// Package core defines the location-service model of the paper (Section 3):
// tracked objects, sighting records, location descriptors with worst-case
// accuracy, and the pure query semantics — overlap degrees for range queries
// and the nearest-neighbor selection rule. Everything here is independent of
// servers and transports so the semantics can be tested and reused in
// isolation (the distributed algorithms in internal/server are built on it).
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"locsvc/internal/geo"
)

// OID identifies a tracked object, unique within the location service's
// namespace (the paper's s.oId ∈ OId).
type OID string

// Sighting is a sighting record s ∈ S (Section 3.1): one position report
// for a tracked object, stamped with the sensor accuracy at measurement
// time.
type Sighting struct {
	OID OID
	// T is the timestamp of the sighting. The paper assumes synchronized
	// clocks (e.g., GPS time).
	T time.Time
	// Pos is the object's position at time T in the service plane.
	Pos geo.Point
	// SensAcc is the sensor accuracy: the maximum distance between Pos
	// and the object's actual position at time T.
	SensAcc float64
}

// Validate reports whether the sighting is well formed.
func (s Sighting) Validate() error {
	if s.OID == "" {
		return errors.New("core: sighting has empty object id")
	}
	if s.SensAcc < 0 {
		return fmt.Errorf("core: negative sensor accuracy %v", s.SensAcc)
	}
	return nil
}

// LocationDescriptor is ld(o): the position stored for an object together
// with its worst-case accuracy. The object is guaranteed to reside within
// the circular location area of radius Acc around Pos (Fig. 2):
//
//	DISTANCE(ld(o).pos, rp(o)) ≤ ld(o).acc
type LocationDescriptor struct {
	Pos geo.Point
	// Acc is the worst-case deviation of Pos from the real position, in
	// meters. Smaller values mean higher accuracy.
	Acc float64
}

// Area returns the circular location area defined by the descriptor.
func (ld LocationDescriptor) Area() geo.Circle { return geo.Circle{C: ld.Pos, R: ld.Acc} }

// Aged returns the descriptor's accuracy bound at time now, given the
// object's maximum speed: acc(t) = acc + vmax·(t − t0). This is the aging
// estimation of [15] used for cached position descriptors (Section 6.5) and
// for deciding whether cached information is still accurate enough.
func (ld LocationDescriptor) Aged(since, now time.Time, maxSpeed float64) LocationDescriptor {
	if !now.After(since) || maxSpeed <= 0 {
		return ld
	}
	aged := ld
	aged.Acc += maxSpeed * now.Sub(since).Seconds()
	return aged
}

// RegInfo is the registration information record kept for a visitor at its
// agent (the v.regInfo component of Section 5).
type RegInfo struct {
	// Registrant identifies the registering instance (a transport node
	// id) that receives accuracy-change notifications.
	Registrant string
	// DesAcc is the desired accuracy requested at registration.
	DesAcc float64
	// MinAcc is the worst accuracy the registrant will accept.
	MinAcc float64
	// MaxSpeed is the declared maximum speed of the object in m/s, used
	// for accuracy aging. Zero disables aging.
	MaxSpeed float64
}

// Validate reports whether the requested accuracy range is well formed
// (desired accuracy must be at least as good — i.e. as small — as the
// minimum acceptable accuracy).
func (ri RegInfo) Validate() error {
	if ri.DesAcc < 0 || ri.MinAcc < 0 {
		return errors.New("core: negative accuracy bound")
	}
	if ri.DesAcc > ri.MinAcc {
		return fmt.Errorf("core: desired accuracy %v worse than minimum %v", ri.DesAcc, ri.MinAcc)
	}
	return nil
}

// OfferedAcc computes the accuracy a leaf server with achievable accuracy
// achievable offers for this registration: max(achievable, desAcc)
// (Algorithm 6-1, line 8). The second return value reports whether the
// registration succeeds, i.e. achievable ≤ minAcc (line 4).
func (ri RegInfo) OfferedAcc(achievable float64) (float64, bool) {
	if achievable > ri.MinAcc {
		return achievable, false
	}
	if achievable < ri.DesAcc {
		return ri.DesAcc, true
	}
	return achievable, true
}

// Entry is one (object id, location descriptor) pair as returned by range
// and nearest-neighbor queries.
type Entry struct {
	OID OID
	LD  LocationDescriptor
}

// Errors returned by the service model and the servers built on it.
var (
	// ErrNotFound indicates the queried object is not tracked by the LS.
	ErrNotFound = errors.New("core: object not tracked")
	// ErrAccuracy indicates the LS cannot offer an accuracy within the
	// requested [desAcc, minAcc] range (registerFailed).
	ErrAccuracy = errors.New("core: requested accuracy not available")
	// ErrOutOfArea indicates a position outside the root service area.
	ErrOutOfArea = errors.New("core: position outside service area")
	// ErrBadRequest indicates malformed query or registration parameters.
	ErrBadRequest = errors.New("core: bad request")
	// ErrTimeout indicates an operation expired before its reply arrived
	// (a swept in-flight call or a dropped datagram). It wraps
	// context.DeadlineExceeded so errors.Is treats a remotely-resolved
	// timeout frame and a locally-expired context identically.
	ErrTimeout = fmt.Errorf("core: operation timed out: %w", context.DeadlineExceeded)
	// ErrUnavailable indicates the responsible server (or a partition of
	// the hierarchy needed to answer) is currently unreachable: the query
	// was answered in degraded mode and came back without the data rather
	// than proving its absence. Callers should treat it as retryable.
	ErrUnavailable = errors.New("core: responsible server unavailable")
)
