package core

import (
	"math"
	"math/rand"
	"testing"

	"locsvc/internal/geo"
)

func TestOverlapPointDescriptor(t *testing.T) {
	a := AreaFromRect(geo.R(0, 0, 10, 10))
	inside := LocationDescriptor{Pos: geo.Pt(5, 5)}
	outside := LocationDescriptor{Pos: geo.Pt(15, 5)}
	if got := a.Overlap(inside); got != 1 {
		t.Errorf("overlap inside point = %v, want 1", got)
	}
	if got := a.Overlap(outside); got != 0 {
		t.Errorf("overlap outside point = %v, want 0", got)
	}
}

func TestOverlapFigure3Cases(t *testing.T) {
	// Reconstructs the qualitative cases of Fig. 3: an object fully
	// inside has overlap 1, fully outside 0, straddling in between.
	a := AreaFromRect(geo.R(0, 0, 100, 100))
	tests := []struct {
		name string
		ld   LocationDescriptor
		lo   float64
		hi   float64
	}{
		{"fully inside (o1)", LocationDescriptor{Pos: geo.Pt(50, 50), Acc: 10}, 1, 1},
		{"fully outside (o2)", LocationDescriptor{Pos: geo.Pt(200, 200), Acc: 10}, 0, 0},
		{"half on edge (o3)", LocationDescriptor{Pos: geo.Pt(0, 50), Acc: 10}, 0.49, 0.51},
		{"corner quarter", LocationDescriptor{Pos: geo.Pt(0, 0), Acc: 10}, 0.24, 0.26},
		{"mostly outside (o4)", LocationDescriptor{Pos: geo.Pt(-8, 50), Acc: 10}, 0.05, 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := a.Overlap(tt.ld)
			if got < tt.lo || got > tt.hi {
				t.Errorf("overlap = %v, want in [%v, %v]", got, tt.lo, tt.hi)
			}
		})
	}
}

func TestOverlapNeverExceedsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Area{Vertices: geo.RegularPolygon(geo.Pt(0, 0), 50, 8)}
	for i := 0; i < 500; i++ {
		ld := LocationDescriptor{
			Pos: geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100),
			Acc: rng.Float64() * 60,
		}
		ov := a.Overlap(ld)
		if ov < 0 || ov > 1 {
			t.Fatalf("overlap out of range: %v for %+v", ov, ld)
		}
	}
}

func TestRangeQualifies(t *testing.T) {
	a := AreaFromRect(geo.R(0, 0, 100, 100))
	tests := []struct {
		name       string
		ld         LocationDescriptor
		reqAcc     float64
		reqOverlap float64
		want       bool
	}{
		{"inside, good accuracy", LocationDescriptor{geo.Pt(50, 50), 10}, 20, 0.5, true},
		{"inside, accuracy too coarse (o5 in Fig. 3)", LocationDescriptor{geo.Pt(50, 50), 30}, 20, 0.5, false},
		{"straddling, overlap above threshold", LocationDescriptor{geo.Pt(0, 50), 10}, 20, 0.3, true},
		{"straddling, overlap below threshold", LocationDescriptor{geo.Pt(0, 50), 10}, 20, 0.7, false},
		{"zero overlap threshold is invalid", LocationDescriptor{geo.Pt(50, 50), 10}, 20, 0, false},
		{"threshold above one is invalid", LocationDescriptor{geo.Pt(50, 50), 10}, 20, 1.1, false},
		{"exact threshold qualifies", LocationDescriptor{geo.Pt(50, 50), 10}, 10, 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.RangeQualifies(tt.ld, tt.reqAcc, tt.reqOverlap); got != tt.want {
				t.Errorf("RangeQualifies = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSelectNearestBasic(t *testing.T) {
	p := geo.Pt(0, 0)
	cands := []Entry{
		{OID: "far", LD: LocationDescriptor{Pos: geo.Pt(100, 0), Acc: 10}},
		{OID: "near", LD: LocationDescriptor{Pos: geo.Pt(10, 0), Acc: 10}},
		{OID: "mid", LD: LocationDescriptor{Pos: geo.Pt(50, 0), Acc: 10}},
	}
	res := SelectNearest(cands, p, 20, 0)
	if !res.Found || res.Nearest.OID != "near" {
		t.Fatalf("nearest = %+v", res)
	}
	if len(res.Near) != 0 {
		t.Errorf("nearQual=0 should give empty nearObjSet, got %v", res.Near)
	}
	if math.Abs(res.GuaranteedMinDist-(10-20)) < 1e-9 {
		t.Error("negative guaranteed distance not clamped")
	}
	if res.GuaranteedMinDist != 0 {
		t.Errorf("GuaranteedMinDist = %v, want 0 (10 - 20 clamped)", res.GuaranteedMinDist)
	}
}

func TestSelectNearestGuaranteedDistance(t *testing.T) {
	p := geo.Pt(0, 0)
	cands := []Entry{{OID: "o", LD: LocationDescriptor{Pos: geo.Pt(100, 0), Acc: 25}}}
	res := SelectNearest(cands, p, 25, 0)
	if math.Abs(res.GuaranteedMinDist-75) > 1e-9 {
		t.Errorf("GuaranteedMinDist = %v, want 75", res.GuaranteedMinDist)
	}
}

func TestSelectNearestFigure4Scenario(t *testing.T) {
	// Fig. 4: o is returned; o1 is within nearQual of o's distance and
	// appears in nearObjSet; o2 is farther than dist(o)+nearQual; o3 is
	// excluded by accuracy.
	p := geo.Pt(0, 0)
	reqAcc, nearQual := 20.0, 30.0
	o := Entry{OID: "o", LD: LocationDescriptor{Pos: geo.Pt(50, 0), Acc: 15}}
	o1 := Entry{OID: "o1", LD: LocationDescriptor{Pos: geo.Pt(0, 70), Acc: 15}}
	o2 := Entry{OID: "o2", LD: LocationDescriptor{Pos: geo.Pt(0, 90), Acc: 15}}
	o3 := Entry{OID: "o3", LD: LocationDescriptor{Pos: geo.Pt(55, 0), Acc: 50}}
	res := SelectNearest([]Entry{o, o1, o2, o3}, p, reqAcc, nearQual)
	if res.Nearest.OID != "o" {
		t.Fatalf("nearest = %v, want o", res.Nearest.OID)
	}
	if len(res.Near) != 1 || res.Near[0].OID != "o1" {
		t.Errorf("nearObjSet = %+v, want [o1]", res.Near)
	}
}

func TestSelectNearestNearQualTwiceReqAccIncludesAllPotentiallyCloser(t *testing.T) {
	// The paper: with nearQual = 2·reqAcc every object that could
	// potentially be closer to p than the selected one is in nearObjSet.
	rng := rand.New(rand.NewSource(11))
	p := geo.Pt(0, 0)
	reqAcc := 25.0
	for iter := 0; iter < 100; iter++ {
		var cands []Entry
		for i := 0; i < 30; i++ {
			cands = append(cands, Entry{
				OID: OID(rune('a' + i)),
				LD: LocationDescriptor{
					Pos: geo.Pt(rng.Float64()*400-200, rng.Float64()*400-200),
					Acc: rng.Float64() * reqAcc,
				},
			})
		}
		res := SelectNearest(cands, p, reqAcc, 2*reqAcc)
		if !res.Found {
			continue
		}
		nd := res.Nearest.LD.Pos.Dist(p)
		inNear := map[OID]bool{}
		for _, e := range res.Near {
			inNear[e.OID] = true
		}
		for _, e := range cands {
			if e.OID == res.Nearest.OID {
				continue
			}
			// Object could be closer than the nearest if its best
			// case beats the nearest's worst case.
			couldBeCloser := e.LD.Pos.Dist(p)-e.LD.Acc < nd+res.Nearest.LD.Acc
			if couldBeCloser && e.LD.Pos.Dist(p) <= nd+2*reqAcc && !inNear[e.OID] {
				t.Fatalf("iter %d: %v could be closer but missing from nearObjSet", iter, e.OID)
			}
		}
	}
}

func TestSelectNearestEmptyAndFiltered(t *testing.T) {
	res := SelectNearest(nil, geo.Pt(0, 0), 10, 5)
	if res.Found {
		t.Error("empty candidate set reported Found")
	}
	res = SelectNearest([]Entry{
		{OID: "bad", LD: LocationDescriptor{Pos: geo.Pt(1, 1), Acc: 100}},
	}, geo.Pt(0, 0), 10, 5)
	if res.Found {
		t.Error("accuracy-filtered candidate reported Found")
	}
}

func TestSelectNearestDeterministicTieBreak(t *testing.T) {
	p := geo.Pt(0, 0)
	cands := []Entry{
		{OID: "b", LD: LocationDescriptor{Pos: geo.Pt(10, 0), Acc: 1}},
		{OID: "a", LD: LocationDescriptor{Pos: geo.Pt(0, 10), Acc: 1}},
	}
	for i := 0; i < 5; i++ {
		res := SelectNearest(cands, p, 10, 0)
		if res.Nearest.OID != "a" {
			t.Fatalf("tie break chose %v, want a", res.Nearest.OID)
		}
	}
}

func TestAreaHelpers(t *testing.T) {
	a := AreaFromRect(geo.R(0, 0, 10, 20))
	if got := a.Size(); got != 200 {
		t.Errorf("Size = %v", got)
	}
	if a.Empty() {
		t.Error("non-empty area reported Empty")
	}
	if (Area{}).Empty() == false {
		t.Error("zero area not Empty")
	}
	if got := a.Bounds(); got != geo.R(0, 0, 10, 20) {
		t.Errorf("Bounds = %v", got)
	}
	if !a.Contains(geo.Pt(5, 5)) || a.Contains(geo.Pt(50, 5)) {
		t.Error("Contains wrong")
	}
}
