// Package mobility provides the synthetic movement models that drive
// tracked objects in simulations and benchmarks. The paper's evaluation
// registers objects at random positions and its future-work section names
// density, moving patterns and locality as the parameters of interest;
// these models cover that space:
//
//   - RandomWaypoint — the classic mobility benchmark: pick a destination
//     uniformly in the area, travel at a sampled speed, pause, repeat.
//   - ManhattanGrid — movement constrained to a street grid, producing the
//     boundary-crossing patterns of vehicles in a city.
//   - Hotspot — objects orbit attraction points (Gaussian excursions) and
//     occasionally migrate between them, producing skewed densities.
//   - Stationary — objects that never move (reference points, beacons).
//
// Models are deterministic given their seed and are not safe for concurrent
// use; each simulated object owns one model instance.
package mobility

import (
	"math"
	"math/rand"

	"locsvc/internal/geo"
)

// Model advances one object's position over simulated time.
type Model interface {
	// Pos returns the current position.
	Pos() geo.Point
	// Step advances the object by dt seconds and returns the new
	// position, which always stays within the model's area.
	Step(dt float64) geo.Point
}

// clampToRect keeps positions inside the movement area.
func clampToRect(p geo.Point, r geo.Rect) geo.Point {
	return r.ClampPoint(p)
}

// ---------------------------------------------------------------------------

// RandomWaypoint implements the random-waypoint model.
type RandomWaypoint struct {
	area     geo.Rect
	minSpeed float64
	maxSpeed float64
	pause    float64

	rng      *rand.Rand
	pos      geo.Point
	dest     geo.Point
	speed    float64
	pauseRem float64
}

var _ Model = (*RandomWaypoint)(nil)

// NewRandomWaypoint creates a random-waypoint walker starting at a random
// position in area. Speeds are in m/s; pause is the dwell time at each
// waypoint in seconds.
func NewRandomWaypoint(area geo.Rect, minSpeed, maxSpeed, pause float64, seed int64) *RandomWaypoint {
	rng := rand.New(rand.NewSource(seed))
	m := &RandomWaypoint{
		area:     area,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		pause:    pause,
		rng:      rng,
		pos:      randPoint(area, rng),
	}
	m.pickDest()
	return m
}

func randPoint(r geo.Rect, rng *rand.Rand) geo.Point {
	return geo.Pt(r.Min.X+rng.Float64()*r.Width(), r.Min.Y+rng.Float64()*r.Height())
}

func (m *RandomWaypoint) pickDest() {
	m.dest = randPoint(m.area, m.rng)
	m.speed = m.minSpeed + m.rng.Float64()*(m.maxSpeed-m.minSpeed)
}

// Pos implements Model.
func (m *RandomWaypoint) Pos() geo.Point { return m.pos }

// Step implements Model.
func (m *RandomWaypoint) Step(dt float64) geo.Point {
	for dt > 0 {
		if m.pauseRem > 0 {
			wait := math.Min(m.pauseRem, dt)
			m.pauseRem -= wait
			dt -= wait
			continue
		}
		dist := m.pos.Dist(m.dest)
		travel := m.speed * dt
		if travel < dist {
			m.pos = m.pos.Lerp(m.dest, travel/dist)
			break
		}
		// Arrive, pause, pick a new destination.
		if m.speed > 0 {
			dt -= dist / m.speed
		} else {
			dt = 0
		}
		m.pos = m.dest
		m.pauseRem = m.pause
		m.pickDest()
	}
	return m.pos
}

// ---------------------------------------------------------------------------

// ManhattanGrid moves an object along the lines of a street grid with the
// given block size, turning at intersections with fixed probabilities.
type ManhattanGrid struct {
	area  geo.Rect
	block float64
	speed float64

	rng *rand.Rand
	pos geo.Point
	dir geo.Point // unit vector along one axis
}

var _ Model = (*ManhattanGrid)(nil)

// NewManhattanGrid creates a grid walker. The starting position snaps to
// the nearest street line.
func NewManhattanGrid(area geo.Rect, block, speed float64, seed int64) *ManhattanGrid {
	rng := rand.New(rand.NewSource(seed))
	p := randPoint(area, rng)
	m := &ManhattanGrid{area: area, block: block, speed: speed, rng: rng}
	// Snap to a street and move along it: a horizontal street (snapped
	// Y) means east/west movement, a vertical one north/south.
	if rng.Intn(2) == 0 {
		p.Y = snap(p.Y, block)
		m.dir = geo.Pt(float64(1-2*rng.Intn(2)), 0)
	} else {
		p.X = snap(p.X, block)
		m.dir = geo.Pt(0, float64(1-2*rng.Intn(2)))
	}
	m.pos = clampToRect(p, area)
	return m
}

func snap(v, block float64) float64 { return math.Round(v/block) * block }

// Pos implements Model.
func (m *ManhattanGrid) Pos() geo.Point { return m.pos }

// Step implements Model.
func (m *ManhattanGrid) Step(dt float64) geo.Point {
	remaining := m.speed * dt
	for remaining > 0 {
		// Distance to the next intersection along the current axis.
		var toNext float64
		if m.dir.X != 0 {
			next := snap(m.pos.X+m.dir.X*m.block/2, m.block)
			toNext = math.Abs(next - m.pos.X)
		} else {
			next := snap(m.pos.Y+m.dir.Y*m.block/2, m.block)
			toNext = math.Abs(next - m.pos.Y)
		}
		if toNext <= 0 {
			toNext = m.block
		}
		step := math.Min(toNext, remaining)
		m.pos = m.pos.Add(m.dir.Scale(step))
		remaining -= step

		// Bounce off the area border.
		if !m.area.ContainsClosed(m.pos) {
			m.pos = clampToRect(m.pos, m.area)
			m.dir = m.dir.Scale(-1)
			continue
		}
		if step == toNext {
			// At an intersection: 50% straight, 25% each turn.
			switch m.rng.Intn(4) {
			case 0:
				m.dir = m.turn(true)
			case 1:
				m.dir = m.turn(false)
			}
		}
	}
	return m.pos
}

func (m *ManhattanGrid) turn(left bool) geo.Point {
	if left {
		return geo.Pt(-m.dir.Y, m.dir.X)
	}
	return geo.Pt(m.dir.Y, -m.dir.X)
}

// ---------------------------------------------------------------------------

// Hotspot keeps an object near one of several attraction points with
// Gaussian excursions, migrating to another hotspot with a small
// probability per step. It produces the skewed object densities ("where hot
// spots are located", Section 4) used in the density experiments.
type Hotspot struct {
	area    geo.Rect
	centers []geo.Point
	sigma   float64
	speed   float64
	migrate float64

	rng     *rand.Rand
	current int
	pos     geo.Point
	target  geo.Point
}

var _ Model = (*Hotspot)(nil)

// NewHotspot creates a hotspot walker over the given attraction centers.
// sigma is the excursion spread in meters; migrate is the per-target
// probability of switching hotspots.
func NewHotspot(area geo.Rect, centers []geo.Point, sigma, speed, migrate float64, seed int64) *Hotspot {
	if len(centers) == 0 {
		centers = []geo.Point{area.Center()}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Hotspot{
		area: area, centers: centers, sigma: sigma, speed: speed,
		migrate: migrate, rng: rng, current: rng.Intn(len(centers)),
	}
	m.pos = m.sample()
	m.target = m.sample()
	return m
}

func (m *Hotspot) sample() geo.Point {
	c := m.centers[m.current]
	p := geo.Pt(c.X+m.rng.NormFloat64()*m.sigma, c.Y+m.rng.NormFloat64()*m.sigma)
	return clampToRect(p, m.area)
}

// Pos implements Model.
func (m *Hotspot) Pos() geo.Point { return m.pos }

// Step implements Model.
func (m *Hotspot) Step(dt float64) geo.Point {
	remaining := m.speed * dt
	for remaining > 0 {
		dist := m.pos.Dist(m.target)
		if dist > remaining {
			m.pos = m.pos.Lerp(m.target, remaining/dist)
			break
		}
		m.pos = m.target
		remaining -= dist
		if m.rng.Float64() < m.migrate {
			m.current = m.rng.Intn(len(m.centers))
		}
		m.target = m.sample()
	}
	return m.pos
}

// ---------------------------------------------------------------------------

// Stationary never moves.
type Stationary struct {
	pos geo.Point
}

var _ Model = (*Stationary)(nil)

// NewStationary returns a fixed-position model.
func NewStationary(p geo.Point) *Stationary { return &Stationary{pos: p} }

// Pos implements Model.
func (m *Stationary) Pos() geo.Point { return m.pos }

// Step implements Model.
func (m *Stationary) Step(float64) geo.Point { return m.pos }
