package mobility

import (
	"math"
	"testing"

	"locsvc/internal/geo"
)

var testArea = geo.R(0, 0, 1000, 1000)

func TestModelsStayInArea(t *testing.T) {
	models := map[string]Model{
		"random waypoint": NewRandomWaypoint(testArea, 1, 10, 0, 1),
		"manhattan":       NewManhattanGrid(testArea, 100, 10, 2),
		"hotspot": NewHotspot(testArea, []geo.Point{{X: 200, Y: 200}, {X: 800, Y: 800}},
			50, 10, 0.1, 3),
		"stationary": NewStationary(geo.Pt(500, 500)),
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 2000; i++ {
				p := m.Step(1)
				if !testArea.ContainsClosed(p) {
					t.Fatalf("step %d escaped area: %v", i, p)
				}
				if p != m.Pos() {
					t.Fatalf("Step and Pos disagree: %v vs %v", p, m.Pos())
				}
			}
		})
	}
}

func TestSpeedBound(t *testing.T) {
	// No model may move faster than its configured speed.
	models := map[string]struct {
		m        Model
		maxSpeed float64
	}{
		"random waypoint": {NewRandomWaypoint(testArea, 1, 10, 0, 4), 10},
		"manhattan":       {NewManhattanGrid(testArea, 100, 7, 5), 7},
	}
	for name, tt := range models {
		t.Run(name, func(t *testing.T) {
			prev := tt.m.Pos()
			for i := 0; i < 1000; i++ {
				p := tt.m.Step(1)
				// Manhattan distance can exceed Euclid displacement at
				// turns, so compare against path length bound.
				if d := p.Dist(prev); d > tt.maxSpeed*1.0001 {
					t.Fatalf("step %d moved %v m in 1 s (max %v)", i, d, tt.maxSpeed)
				}
				prev = p
			}
		})
	}
}

func TestRandomWaypointDeterministic(t *testing.T) {
	a := NewRandomWaypoint(testArea, 1, 10, 1, 42)
	b := NewRandomWaypoint(testArea, 1, 10, 1, 42)
	for i := 0; i < 500; i++ {
		if a.Step(1) != b.Step(1) {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRandomWaypoint(testArea, 1, 10, 1, 43)
	diverged := false
	for i := 0; i < 50; i++ {
		if a.Step(1) != c.Step(1) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical paths")
	}
}

func TestRandomWaypointPause(t *testing.T) {
	m := NewRandomWaypoint(testArea, 5, 5, 10, 7)
	moved := 0.0
	prev := m.Pos()
	for i := 0; i < 3000; i++ {
		p := m.Step(1)
		moved += p.Dist(prev)
		prev = p
	}
	// With 10 s pauses the average speed must be clearly below 5 m/s.
	avg := moved / 3000
	if avg >= 5 {
		t.Errorf("average speed %v with pauses, want < 5", avg)
	}
	if avg == 0 {
		t.Error("object never moved")
	}
}

func TestRandomWaypointCoversArea(t *testing.T) {
	m := NewRandomWaypoint(testArea, 20, 20, 0, 11)
	quadrants := map[int]bool{}
	for i := 0; i < 20000; i++ {
		p := m.Step(1)
		q := 0
		if p.X > 500 {
			q++
		}
		if p.Y > 500 {
			q += 2
		}
		quadrants[q] = true
	}
	if len(quadrants) != 4 {
		t.Errorf("visited %d quadrants, want 4", len(quadrants))
	}
}

func TestManhattanStaysOnGrid(t *testing.T) {
	m := NewManhattanGrid(testArea, 100, 10, 6)
	for i := 0; i < 2000; i++ {
		p := m.Step(0.5)
		onX := math.Abs(p.X-snap(p.X, 100)) < 1e-6
		onY := math.Abs(p.Y-snap(p.Y, 100)) < 1e-6
		// At the clamped border the walker may sit off-grid briefly;
		// accept border positions as well.
		onBorder := p.X == 0 || p.Y == 0 || p.X == 1000 || p.Y == 1000
		if !onX && !onY && !onBorder {
			t.Fatalf("step %d left the street grid: %v", i, p)
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	centers := []geo.Point{{X: 250, Y: 250}, {X: 750, Y: 750}}
	m := NewHotspot(testArea, centers, 50, 20, 0.05, 8)
	near := 0
	const steps = 5000
	for i := 0; i < steps; i++ {
		p := m.Step(1)
		for _, c := range centers {
			if p.Dist(c) < 200 {
				near++
				break
			}
		}
	}
	// The vast majority of samples should be near a hotspot.
	if frac := float64(near) / steps; frac < 0.8 {
		t.Errorf("only %.1f%% of samples near hotspots", frac*100)
	}
}

func TestHotspotDefaultsToAreaCenter(t *testing.T) {
	m := NewHotspot(testArea, nil, 10, 5, 0, 9)
	for i := 0; i < 500; i++ {
		p := m.Step(1)
		if p.Dist(testArea.Center()) > 100 {
			t.Fatalf("no-center hotspot wandered to %v", p)
		}
	}
}

func TestStationary(t *testing.T) {
	m := NewStationary(geo.Pt(10, 20))
	if m.Step(100) != geo.Pt(10, 20) || m.Pos() != geo.Pt(10, 20) {
		t.Error("stationary object moved")
	}
}
