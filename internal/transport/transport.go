// Package transport moves protocol messages between location servers,
// clients and tracked objects. Two implementations are provided:
//
//   - Inproc: every node is a goroutine-dispatched handler in one process,
//     with injectable per-hop latency and loss. This substitutes the paper's
//     testbed of five workstations on 100 Mbit Ethernet: hop counts, message
//     sequences and concurrency are identical, only absolute wire time
//     differs (see DESIGN.md, substitutions).
//   - UDP: each node binds a datagram socket, mirroring the paper's choice
//     of UDP for efficient client/server and server/server interaction.
//
// Both support one-way Send and blocking Call with hop-by-hop replies, the
// two interaction styles of the paper's algorithms.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"locsvc/internal/msg"
)

// Handler processes one incoming message on a node. For hop-by-hop calls
// the returned message is sent back as the reply; returning an error sends
// an ErrorRes instead. One-way messages ignore the return values. Handlers
// run on their own goroutine and may issue nested Calls.
type Handler func(ctx context.Context, from msg.NodeID, m msg.Message) (msg.Message, error)

// Node is one attached endpoint of a Network.
type Node interface {
	// ID returns the node's network identifier.
	ID() msg.NodeID
	// Send delivers m to the destination without waiting for an answer.
	Send(to msg.NodeID, m msg.Message) error
	// Call delivers m and blocks until the destination's handler reply
	// arrives or ctx is done.
	Call(ctx context.Context, to msg.NodeID, m msg.Message) (msg.Message, error)
	// Close detaches the node from the network.
	Close() error
}

// Network attaches nodes.
type Network interface {
	// Attach registers a handler under id and returns the node endpoint.
	Attach(id msg.NodeID, h Handler) (Node, error)
	// Close shuts the network down and waits for in-flight deliveries.
	Close() error
}

// Errors returned by transports.
var (
	ErrUnknownNode = errors.New("transport: unknown destination node")
	ErrClosed      = errors.New("transport: network closed")
	ErrDuplicateID = errors.New("transport: node id already attached")
)

// calls tracks in-flight Call invocations awaiting replies. It is shared by
// the transport implementations.
type calls struct {
	mu      sync.Mutex
	waiters map[uint64]chan msg.Message
	next    atomic.Uint64
}

func newCalls() *calls {
	return &calls{waiters: make(map[uint64]chan msg.Message)}
}

// register allocates a correlation id and its reply channel.
func (c *calls) register() (uint64, chan msg.Message) {
	id := c.next.Add(1)
	ch := make(chan msg.Message, 1)
	c.mu.Lock()
	c.waiters[id] = ch
	c.mu.Unlock()
	return id, ch
}

// cancel drops a waiter that will no longer be serviced.
func (c *calls) cancel(id uint64) {
	c.mu.Lock()
	delete(c.waiters, id)
	c.mu.Unlock()
}

// deliver routes a reply to its waiter; it reports whether one was waiting.
func (c *calls) deliver(id uint64, m msg.Message) bool {
	c.mu.Lock()
	ch, ok := c.waiters[id]
	if ok {
		delete(c.waiters, id)
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	ch <- m
	return true
}

// await blocks until the reply for id arrives or ctx is done.
func (c *calls) await(ctx context.Context, id uint64, ch chan msg.Message) (msg.Message, error) {
	select {
	case m := <-ch:
		if err := msg.AsError(m); err != nil {
			return nil, err
		}
		return m, nil
	case <-ctx.Done():
		c.cancel(id)
		return nil, fmt.Errorf("transport: call: %w", ctx.Err())
	}
}
