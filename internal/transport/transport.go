// Package transport moves protocol messages between location servers,
// clients and tracked objects. Two implementations are provided:
//
//   - Inproc: every node is a goroutine-dispatched handler in one process,
//     with injectable per-hop latency and loss. This substitutes the paper's
//     testbed of five workstations on 100 Mbit Ethernet: hop counts, message
//     sequences and concurrency are identical, only absolute wire time
//     differs (see DESIGN.md, substitutions).
//   - UDP: each node binds a datagram socket, mirroring the paper's choice
//     of UDP for efficient client/server and server/server interaction.
//
// Both support one-way Send, blocking Call and multiplexed CallAsync with
// hop-by-hop replies. Calls are correlated by request id through a shared
// in-flight tracker: per-call deadlines are swept by a timeout goroutine
// that resolves expired entries as timeout error frames, and an optional
// in-flight cap provides backpressure, so thousands of requests can ride
// one socket concurrently instead of in lockstep.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/msg"
)

// Handler processes one incoming message on a node. For hop-by-hop calls
// the returned message is sent back as the reply; returning an error sends
// an ErrorRes instead. One-way messages ignore the return values. Handlers
// run on their own goroutine and may issue nested Calls.
type Handler func(ctx context.Context, from msg.NodeID, m msg.Message) (msg.Message, error)

// Node is one attached endpoint of a Network.
type Node interface {
	// ID returns the node's network identifier.
	ID() msg.NodeID
	// Send delivers m to the destination without waiting for an answer.
	Send(to msg.NodeID, m msg.Message) error
	// Call delivers m and blocks until the destination's handler reply
	// arrives or ctx is done.
	Call(ctx context.Context, to msg.NodeID, m msg.Message) (msg.Message, error)
	// CallAsync delivers m and returns immediately with a PendingCall that
	// resolves when the reply arrives, the deadline expires (ctx's
	// deadline, or the network's default call timeout when ctx has none),
	// or the call is cancelled. When the network caps in-flight calls,
	// CallAsync blocks until a slot frees or ctx is done.
	CallAsync(ctx context.Context, to msg.NodeID, m msg.Message) (*PendingCall, error)
	// PendingCalls returns the number of in-flight calls awaiting replies;
	// a quiesced node reports zero (no leaked entries).
	PendingCalls() int
	// Close detaches the node from the network.
	Close() error
}

// Network attaches nodes.
type Network interface {
	// Attach registers a handler under id and returns the node endpoint.
	Attach(id msg.NodeID, h Handler) (Node, error)
	// Close shuts the network down and waits for in-flight deliveries.
	Close() error
}

// Errors returned by transports.
var (
	ErrUnknownNode = errors.New("transport: unknown destination node")
	ErrClosed      = errors.New("transport: network closed")
	ErrDuplicateID = errors.New("transport: node id already attached")
	// ErrBreakerOpen is returned by Send/Call/CallAsync when the
	// destination's circuit breaker is open: the peer has failed enough
	// consecutive calls that further attempts are refused immediately —
	// no datagram is written and no in-flight slot is burned — until the
	// cooldown elapses and a probe call half-opens the breaker.
	ErrBreakerOpen = errors.New("transport: peer circuit breaker open")
)

// defaultSweepInterval is how often the timeout goroutine scans for
// expired in-flight calls when no interval is configured. It bounds how
// late past its deadline a call can resolve.
const defaultSweepInterval = 25 * time.Millisecond

// trackerConfig tunes a node's in-flight call tracker.
type trackerConfig struct {
	// maxInFlight caps concurrently outstanding calls; zero is unbounded.
	maxInFlight int
	// sweepEvery is the timeout goroutine's scan interval; zero uses
	// defaultSweepInterval.
	sweepEvery time.Duration
	// onTimeout observes every call resolved by the deadline sweeper.
	onTimeout func()
	// onLate observes every reply that found no waiter (late after a
	// timeout, a duplicate, or a cancellation).
	onLate func()
	// onOutcome observes every call resolution attributable to the peer:
	// ok=true when a reply arrived (even an error frame — the peer is
	// alive), ok=false when the deadline sweeper expired the call. Caller
	// cancellations say nothing about the peer and are not reported. It
	// feeds per-peer breaker state.
	onOutcome func(to msg.NodeID, ok bool)
}

// calls is the in-flight tracker shared by the transport implementations:
// a request-id-correlated table of waiters with per-call deadlines. A
// reply resolves its entry exactly once (duplicates and late replies are
// counted and dropped); a sweeper goroutine resolves expired entries with
// a timeout error frame; an optional semaphore bounds the table size for
// backpressure.
type calls struct {
	cfg  trackerConfig
	next atomic.Uint64

	// slots, when non-nil, is the in-flight semaphore: register acquires,
	// resolution releases. Sized to cfg.maxInFlight.
	slots chan struct{}

	mu       sync.Mutex
	waiters  map[uint64]*callWaiter
	sweeping bool

	stop     chan struct{}
	stopOnce sync.Once
}

// callWaiter is one in-flight call: its reply channel (buffered so no
// resolver ever blocks), its destination (for per-peer outcome
// accounting) and its deadline (zero = none).
type callWaiter struct {
	ch       chan msg.Message
	to       msg.NodeID
	deadline time.Time
}

func newCalls(cfg trackerConfig) *calls {
	if cfg.sweepEvery <= 0 {
		cfg.sweepEvery = defaultSweepInterval
	}
	c := &calls{
		cfg:     cfg,
		waiters: make(map[uint64]*callWaiter),
		stop:    make(chan struct{}),
	}
	if cfg.maxInFlight > 0 {
		c.slots = make(chan struct{}, cfg.maxInFlight)
	}
	return c
}

// register allocates a correlation id and its reply channel, blocking for
// an in-flight slot when the tracker is bounded. A non-zero deadline arms
// the sweeper for this entry.
func (c *calls) register(ctx context.Context, to msg.NodeID, deadline time.Time) (uint64, chan msg.Message, error) {
	if c.slots != nil {
		select {
		case c.slots <- struct{}{}:
		case <-ctx.Done():
			return 0, nil, fmt.Errorf("transport: awaiting in-flight slot: %w", ctx.Err())
		case <-c.stop:
			return 0, nil, ErrClosed
		}
	}
	id := c.next.Add(1)
	ch := make(chan msg.Message, 1)
	c.mu.Lock()
	c.waiters[id] = &callWaiter{ch: ch, to: to, deadline: deadline}
	startSweeper := !deadline.IsZero() && !c.sweeping
	if startSweeper {
		c.sweeping = true
	}
	c.mu.Unlock()
	if startSweeper {
		go c.sweepLoop()
	}
	return id, ch, nil
}

// take removes and returns the waiter for id, releasing its in-flight
// slot. It is the single point of entry removal, so the slot is released
// exactly once per registered call.
func (c *calls) take(id uint64) *callWaiter {
	c.mu.Lock()
	w, ok := c.waiters[id]
	if ok {
		delete(c.waiters, id)
	}
	c.mu.Unlock()
	if !ok {
		return nil
	}
	if c.slots != nil {
		<-c.slots
	}
	return w
}

// cancel drops a waiter that will no longer be serviced.
func (c *calls) cancel(id uint64) {
	c.take(id)
}

// deliver routes a reply to its waiter; it reports whether one was
// waiting. A late or duplicate reply finds no entry — resolved calls are
// removed from the table — so it cannot cross onto another call; it is
// only counted.
func (c *calls) deliver(id uint64, m msg.Message) bool {
	w := c.take(id)
	if w == nil {
		if c.cfg.onLate != nil {
			c.cfg.onLate()
		}
		return false
	}
	w.ch <- m
	if c.cfg.onOutcome != nil {
		c.cfg.onOutcome(w.to, true)
	}
	return true
}

// sweepLoop is the timeout goroutine: every sweep interval it resolves
// expired entries with a timeout error frame, exactly as if the remote had
// answered "timed out". It runs from the first deadline-bearing call until
// the tracker closes.
func (c *calls) sweepLoop() {
	ticker := time.NewTicker(c.cfg.sweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-ticker.C:
			var expired []*callWaiter
			c.mu.Lock()
			for id, w := range c.waiters {
				if !w.deadline.IsZero() && now.After(w.deadline) {
					delete(c.waiters, id)
					expired = append(expired, w)
				}
			}
			c.mu.Unlock()
			for _, w := range expired {
				if c.slots != nil {
					<-c.slots
				}
				w.ch <- msg.ErrorRes{Code: msg.CodeTimeout, Text: "in-flight call expired before its reply arrived"}
				if c.cfg.onTimeout != nil {
					c.cfg.onTimeout()
				}
				if c.cfg.onOutcome != nil {
					c.cfg.onOutcome(w.to, false)
				}
			}
		}
	}
}

// pending returns the number of in-flight entries.
func (c *calls) pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// close stops the sweeper and unblocks registrations waiting on a slot.
// In-flight waiters are left to their callers' contexts.
func (c *calls) close() {
	c.stopOnce.Do(func() { close(c.stop) })
}

// await blocks until the reply for id arrives or ctx is done.
func (c *calls) await(ctx context.Context, id uint64, ch chan msg.Message) (msg.Message, error) {
	select {
	case m := <-ch:
		if err := msg.AsError(m); err != nil {
			return nil, err
		}
		return m, nil
	case <-ctx.Done():
		c.cancel(id)
		return nil, fmt.Errorf("transport: call: %w", ctx.Err())
	}
}

// callDeadline resolves the deadline for a new call: the earlier of the
// context's deadline and now+def. The configured default is a cap, not a
// fallback — a call under a generous context still expires on the
// network's timeout, so the sweeper (not the caller's context) resolves
// lost replies and the timeout is observable in the wire metrics.
func callDeadline(ctx context.Context, def time.Duration) time.Time {
	var dl time.Time
	if d, ok := ctx.Deadline(); ok {
		dl = d
	}
	if def > 0 {
		if capped := time.Now().Add(def); dl.IsZero() || capped.Before(dl) {
			dl = capped
		}
	}
	return dl
}

// PendingCall is one multiplexed in-flight request. It resolves exactly
// once: with the reply, with a timeout error frame from the deadline
// sweeper, or with the Wait context's error.
type PendingCall struct {
	c  *calls
	id uint64
	ch chan msg.Message
}

// ID returns the call's correlation id.
func (p *PendingCall) ID() uint64 { return p.id }

// Done exposes the resolution channel for select loops. The received
// message may be an error frame; run it through msg.AsError. Most callers
// want Wait.
func (p *PendingCall) Done() <-chan msg.Message { return p.ch }

// Wait blocks until the call resolves or ctx is done. Cancelling via ctx
// removes the in-flight entry, so a reply arriving later is counted as
// late and dropped.
func (p *PendingCall) Wait(ctx context.Context) (msg.Message, error) {
	return p.c.await(ctx, p.id, p.ch)
}
