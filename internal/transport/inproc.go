package transport

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"locsvc/internal/metrics"
	"locsvc/internal/msg"
)

// Fault is one scripted delivery fault, returned by a FaultPlan: the
// envelope is dropped, delivered 1+Duplicate times, and/or delayed by
// Delay before the pair's normal latency. The zero Fault delivers
// normally.
type Fault struct {
	// Drop loses the envelope entirely (all copies).
	Drop bool
	// Duplicate delivers that many extra copies, modelling datagram
	// duplication.
	Duplicate int
	// Delay postpones delivery, modelling queueing or a detour. Combined
	// with a shorter call deadline it turns a reply into a late reply.
	Delay time.Duration
}

// InprocOptions configure the in-process network.
type InprocOptions struct {
	// Latency, if non-nil, returns the one-way delivery delay between two
	// nodes. Use it to model the paper's LAN (e.g. a few hundred
	// microseconds per hop) or wide-area placements.
	Latency func(from, to msg.NodeID) time.Duration
	// DropRate is the probability in [0,1] that a one-way message is
	// silently lost, modelling UDP loss for failure-injection tests.
	// Replies to calls are subject to the same loss.
	DropRate float64
	// DupRate is the probability in [0,1] that a message is delivered
	// twice, modelling datagram duplication.
	DupRate float64
	// ReorderRate is the probability in [0,1] that a message is held back
	// and released only after the next message on the same (from, to)
	// pair overtakes it (or after a short safety delay when no successor
	// shows up), modelling datagram reordering.
	ReorderRate float64
	// DelayJitter, if positive, adds a uniform random delay in
	// [0, DelayJitter) to every delivery.
	DelayJitter time.Duration
	// Seed seeds every random fault decision (drop, duplicate, reorder,
	// jitter); zero uses a fixed default. With a single sending
	// goroutine the fault sequence is fully deterministic.
	Seed int64
	// FaultPlan, if non-nil, scripts a deterministic fault for every
	// delivery before the seeded knobs draw; tracker tests use it to
	// target specific envelopes (a reply's CorrID, a particular message
	// type) with exact drops, duplicates and delays.
	FaultPlan func(from, to msg.NodeID, env msg.Envelope) Fault
	// OnDeliver, if non-nil, observes every delivered message; used by
	// the simulation harness to count messages and hops.
	OnDeliver func(from, to msg.NodeID, m msg.Message)
	// BatchMax ≥ 2 coalesces deliveries per (from, to) pair into batches
	// of at most that many envelopes, modelling the UDP transport's
	// datagram batching: one latency draw per batch instead of per
	// envelope. 0 or 1 delivers each envelope on its own.
	BatchMax int
	// BatchLinger bounds how long a lone envelope waits to be coalesced;
	// zero uses a small default. Only meaningful with BatchMax ≥ 2.
	BatchLinger time.Duration
	// CallTimeout caps every Call/CallAsync deadline: the effective
	// deadline is the earlier of the context's and now+CallTimeout.
	// Zero means calls expire only on their own context's deadline.
	CallTimeout time.Duration
	// SweepInterval is the timeout goroutine's scan cadence; zero uses
	// defaultSweepInterval.
	SweepInterval time.Duration
	// MaxInFlight caps outstanding calls per node for backpressure; zero
	// is unbounded.
	MaxInFlight int
	// BreakerThreshold enables per-peer circuit breakers: after that many
	// consecutive swept timeouts to one destination, calls to it fail
	// fast with ErrBreakerOpen until BreakerCooldown elapses and a probe
	// call succeeds. Zero disables breakers.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open probe interval; zero uses
	// defaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Metrics, if non-nil, receives wire_retries, wire_breaker_open and
	// peer_state series (shared by every node of this network).
	Metrics *metrics.Registry
}

// pairKey identifies one directed (sender, receiver) link.
type pairKey struct {
	from, to msg.NodeID
}

// heldEnv is an envelope held back by the reorder fault, waiting for a
// successor to overtake it.
type heldEnv struct {
	env msg.Envelope
}

// inprocBatch is the open delivery batch for one directed link.
type inprocBatch struct {
	dst   *inprocNode
	envs  []msg.Envelope
	timer *time.Timer
}

// Inproc is an in-process Network: nodes are handler functions invoked on
// dedicated goroutines per delivery.
type Inproc struct {
	mu     sync.RWMutex
	nodes  map[msg.NodeID]*inprocNode
	opts   InprocOptions
	wg     sync.WaitGroup
	closed bool

	// dropMu guards rng (all seeded fault draws), held (the reorder
	// hold-back slots) and the node-level fault maps down/blocked.
	dropMu sync.Mutex
	rng    *rand.Rand
	// dropRate is the live loss probability, seeded from opts.DropRate
	// and adjustable via SetDropRate.
	dropRate float64
	held     map[pairKey]*heldEnv
	// down marks paused nodes: every delivery to or from a down node is
	// silently dropped, modelling a crashed or partitioned process whose
	// address still resolves (unlike Close, which unregisters the id).
	down map[msg.NodeID]bool
	// blocked drops deliveries on specific directed links, modelling
	// asymmetric partitions.
	blocked map[pairKey]bool

	// retries counts CallWithRetry re-attempts by nodes of this network
	// (nil without a metrics registry).
	retries *metrics.Counter

	// batchMu guards the per-link delivery batches.
	batchMu sync.Mutex
	batches map[pairKey]*inprocBatch
}

var _ Network = (*Inproc)(nil)

// NewInproc creates an in-process network.
func NewInproc(opts InprocOptions) *Inproc {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	n := &Inproc{
		nodes:    make(map[msg.NodeID]*inprocNode),
		opts:     opts,
		dropRate: opts.DropRate,
		rng:      rand.New(rand.NewSource(seed)),
		held:     make(map[pairKey]*heldEnv),
		down:     make(map[msg.NodeID]bool),
		blocked:  make(map[pairKey]bool),
		batches:  make(map[pairKey]*inprocBatch),
	}
	if opts.Metrics != nil {
		n.retries = opts.Metrics.Counter("wire_retries")
	}
	return n
}

// SetNodeDown pauses or resumes a node: while down, every delivery to or
// from it is silently dropped, but the node stays attached — callers see
// timeouts (and eventually open breakers), not ErrUnknownNode. It models a
// crashed, wedged or fully partitioned process.
func (n *Inproc) SetNodeDown(id msg.NodeID, down bool) {
	n.dropMu.Lock()
	if down {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
	n.dropMu.Unlock()
}

// Block installs or removes an asymmetric partition: while blocked, every
// delivery on the directed link from→to is silently dropped; the reverse
// direction is unaffected.
func (n *Inproc) Block(from, to msg.NodeID, blocked bool) {
	n.dropMu.Lock()
	if blocked {
		n.blocked[pairKey{from, to}] = true
	} else {
		delete(n.blocked, pairKey{from, to})
	}
	n.dropMu.Unlock()
}

// nodeFaulted reports whether the directed link from→to is currently
// severed by a node-level fault.
func (n *Inproc) nodeFaulted(from, to msg.NodeID) bool {
	n.dropMu.Lock()
	defer n.dropMu.Unlock()
	if len(n.down) == 0 && len(n.blocked) == 0 {
		return false
	}
	return n.down[from] || n.down[to] || n.blocked[pairKey{from, to}]
}

// PeerState returns the breaker state of node "of" toward destination
// "to"; PeerClosed when breakers are disabled or "of" is not attached.
func (n *Inproc) PeerState(of, to msg.NodeID) PeerState {
	nd, err := n.lookup(of)
	if err != nil {
		return PeerClosed
	}
	return nd.health.state(to)
}

type inprocNode struct {
	id      msg.NodeID
	net     *Inproc
	handler Handler
	calls   *calls
	health  *health
}

var _ Node = (*inprocNode)(nil)

// Attach implements Network.
func (n *Inproc) Attach(id msg.NodeID, h Handler) (Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.nodes[id]; ok {
		return nil, ErrDuplicateID
	}
	node := &inprocNode{id: id, net: n, handler: h}
	node.health = newHealth(breakerConfig{
		threshold: n.opts.BreakerThreshold,
		cooldown:  n.opts.BreakerCooldown,
		owner:     id,
		metrics:   n.opts.Metrics,
	})
	tc := trackerConfig{
		maxInFlight: n.opts.MaxInFlight,
		sweepEvery:  n.opts.SweepInterval,
	}
	if node.health != nil {
		tc.onOutcome = node.health.outcome
	}
	node.calls = newCalls(tc)
	n.nodes[id] = node
	return node, nil
}

// Close implements Network. It waits up to a grace period for in-flight
// deliveries so tests do not leak handler goroutines.
func (n *Inproc) Close() error {
	n.mu.Lock()
	n.closed = true
	nodes := make([]*inprocNode, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	n.mu.Unlock()
	for _, nd := range nodes {
		nd.calls.close()
	}
	n.flushBatches()
	done := make(chan struct{})
	go func() {
		n.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
	}
	return nil
}

// addDelivery reserves a slot in the delivery WaitGroup, refusing once the
// network is closed. Every asynchronous delivery path must acquire its slot
// through this guard: Close flips closed under the same mutex before it
// waits, so a successful Add always happens-before the Wait and a late
// caller's delivery is dropped instead of racing the shutdown (the UDP
// service model already makes loss-at-close legal).
func (n *Inproc) addDelivery() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.closed {
		return false
	}
	n.wg.Add(1)
	return true
}

// addStage reserves a slot for the next asynchronous stage of a delivery
// chain. A caller that already holds a slot may Add unconditionally — the
// counter is provably nonzero, which the WaitGroup contract allows even
// concurrently with Wait — so deliveries already in the pipeline at Close
// (delayed or held envelopes) run to completion; only brand-new entry
// points go through the closed guard.
func (n *Inproc) addStage(slotHeld bool) bool {
	if slotHeld {
		n.wg.Add(1)
		return true
	}
	return n.addDelivery()
}

// lookup returns the destination node.
func (n *Inproc) lookup(id msg.NodeID) (*inprocNode, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.closed {
		return nil, ErrClosed
	}
	node, ok := n.nodes[id]
	if !ok {
		return nil, ErrUnknownNode
	}
	return node, nil
}

// drawP draws one seeded probability decision.
func (n *Inproc) drawP(p float64) bool {
	if p <= 0 {
		return false
	}
	n.dropMu.Lock()
	defer n.dropMu.Unlock()
	return n.rng.Float64() < p
}

// SetDropRate changes the network-wide datagram loss probability at
// runtime. Soak tests use it to stage lossless setup and verification
// phases around a lossy fault window.
func (n *Inproc) SetDropRate(p float64) {
	n.dropMu.Lock()
	n.dropRate = p
	n.dropMu.Unlock()
}

// dropP returns the current loss probability.
func (n *Inproc) dropP() float64 {
	n.dropMu.Lock()
	defer n.dropMu.Unlock()
	return n.dropRate
}

// drawJitter draws one seeded jitter delay.
func (n *Inproc) drawJitter() time.Duration {
	if n.opts.DelayJitter <= 0 {
		return 0
	}
	n.dropMu.Lock()
	defer n.dropMu.Unlock()
	return time.Duration(n.rng.Int63n(int64(n.opts.DelayJitter)))
}

// drawFault combines the scripted plan and the seeded knobs into one fault
// decision for a delivery.
func (n *Inproc) drawFault(from, to msg.NodeID, env msg.Envelope) Fault {
	var f Fault
	if plan := n.opts.FaultPlan; plan != nil {
		f = plan(from, to, env)
	}
	if n.drawP(n.dropP()) {
		f.Drop = true
	}
	if n.drawP(n.opts.DupRate) {
		f.Duplicate++
	}
	f.Delay += n.drawJitter()
	return f
}

// deliver runs the fault stage for one envelope, then hands the surviving
// copies to the reorder stage and on to dispatch. Every random draw —
// drop, duplicate, jitter and reorder — happens here, synchronously on
// the sender's goroutine, so a sequential send schedule consumes the
// seeded rng in a deterministic order regardless of timer interleaving.
func (n *Inproc) deliver(from msg.NodeID, dst *inprocNode, env msg.Envelope) {
	if n.nodeFaulted(from, dst.id) {
		return
	}
	f := n.drawFault(from, dst.id, env)
	if f.Drop {
		return
	}
	reorder := n.drawP(n.opts.ReorderRate)
	for i := 0; i <= f.Duplicate; i++ {
		if f.Delay > 0 {
			if !n.addDelivery() {
				continue
			}
			time.AfterFunc(f.Delay, func() {
				defer n.wg.Done()
				n.enqueue(from, dst, env, reorder, true)
			})
			continue
		}
		n.enqueue(from, dst, env, reorder, false)
	}
}

// enqueue applies the reorder hold-back, then dispatches. slotHeld reports
// whether the caller holds a delivery slot for the duration of this call
// (true from tracked timer callbacks, false from a sender's goroutine).
func (n *Inproc) enqueue(from msg.NodeID, dst *inprocNode, env msg.Envelope, reorder, slotHeld bool) {
	if n.opts.ReorderRate > 0 {
		key := pairKey{from, dst.id}
		n.dropMu.Lock()
		if h, ok := n.held[key]; ok {
			// A successor arrived: it overtakes, then the held envelope
			// is released behind it.
			delete(n.held, key)
			n.dropMu.Unlock()
			n.dispatch(from, dst, env, slotHeld)
			n.dispatch(from, dst, h.env, slotHeld)
			return
		}
		if reorder {
			h := &heldEnv{env: env}
			n.held[key] = h
			n.dropMu.Unlock()
			// Safety valve: release the held envelope even if no
			// successor ever overtakes it.
			if !n.addStage(slotHeld) {
				return
			}
			time.AfterFunc(5*time.Millisecond, func() {
				defer n.wg.Done()
				n.dropMu.Lock()
				if n.held[key] != h {
					n.dropMu.Unlock()
					return
				}
				delete(n.held, key)
				n.dropMu.Unlock()
				n.dispatch(from, dst, h.env, true)
			})
			return
		}
		n.dropMu.Unlock()
	}
	n.dispatch(from, dst, env, slotHeld)
}

// dispatch delivers one envelope — directly on its own goroutine, or via
// the per-link batch when batching is enabled. slotHeld as in enqueue.
func (n *Inproc) dispatch(from msg.NodeID, dst *inprocNode, env msg.Envelope, slotHeld bool) {
	if n.opts.BatchMax >= 2 {
		n.batchAdd(from, dst, env)
		return
	}
	if !n.addStage(slotHeld) {
		return
	}
	go func() {
		defer n.wg.Done()
		n.sleepLatency(from, dst.id)
		n.handle(from, dst, env)
	}()
}

// batchAdd coalesces env into the open batch for its link, flushing on the
// count cap or arming the linger timer.
func (n *Inproc) batchAdd(from msg.NodeID, dst *inprocNode, env msg.Envelope) {
	key := pairKey{from, dst.id}
	var flush *inprocBatch
	n.batchMu.Lock()
	b := n.batches[key]
	if b == nil {
		b = &inprocBatch{dst: dst}
		n.batches[key] = b
	}
	b.envs = append(b.envs, env)
	switch {
	case len(b.envs) >= n.opts.BatchMax:
		delete(n.batches, key)
		if b.timer != nil {
			b.timer.Stop()
		}
		flush = b
	case len(b.envs) == 1:
		linger := n.opts.BatchLinger
		if linger <= 0 {
			linger = defaultBatchLinger
		}
		b.timer = time.AfterFunc(linger, func() {
			n.batchMu.Lock()
			if n.batches[key] != b {
				n.batchMu.Unlock()
				return
			}
			delete(n.batches, key)
			n.batchMu.Unlock()
			n.deliverBatch(from, b)
		})
	}
	n.batchMu.Unlock()
	if flush != nil {
		n.deliverBatch(from, flush)
	}
}

// deliverBatch delivers a flushed batch: one latency draw for the whole
// batch (it models one datagram), then each envelope handled on its own
// goroutine, preserving the handlers-may-nest-calls contract.
func (n *Inproc) deliverBatch(from msg.NodeID, b *inprocBatch) {
	if !n.addDelivery() {
		return
	}
	n.deliverBatchSlot(from, b)
}

// deliverBatchSlot is deliverBatch with the delivery slot already reserved.
// The inner per-envelope Adds are plain: they always run while the outer
// slot is held, so the counter cannot be zero when Close is waiting.
func (n *Inproc) deliverBatchSlot(from msg.NodeID, b *inprocBatch) {
	go func() {
		defer n.wg.Done()
		n.sleepLatency(from, b.dst.id)
		for _, env := range b.envs {
			env := env
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.handle(from, b.dst, env)
			}()
		}
	}()
}

// flushBatches delivers every open batch; called on network close, after
// the closed flag is up but before Close starts waiting, so it reserves
// slots directly — the sequential Add still happens-before the Wait.
func (n *Inproc) flushBatches() {
	n.batchMu.Lock()
	rest := make(map[pairKey]*inprocBatch, len(n.batches))
	for k, b := range n.batches {
		if b.timer != nil {
			b.timer.Stop()
		}
		rest[k] = b
		delete(n.batches, k)
	}
	n.batchMu.Unlock()
	for k, b := range rest {
		n.wg.Add(1)
		n.deliverBatchSlot(k.from, b)
	}
}

// sleepLatency applies the configured one-way latency for a link.
func (n *Inproc) sleepLatency(from, to msg.NodeID) {
	if lat := n.opts.Latency; lat != nil {
		if d := lat(from, to); d > 0 {
			time.Sleep(d)
		}
	}
}

// handle executes one delivered envelope: observation, then reply
// correlation through the tracker or handler dispatch.
func (n *Inproc) handle(from msg.NodeID, dst *inprocNode, env msg.Envelope) {
	if obs := n.opts.OnDeliver; obs != nil {
		obs(from, dst.id, env.Msg)
	}
	if env.Reply {
		dst.calls.deliver(env.CorrID, env.Msg)
		return
	}
	resp, err := dst.handler(context.Background(), env.From, env.Msg)
	if env.CorrID == 0 {
		return // one-way message; response (if any) is discarded
	}
	var payload msg.Message
	switch {
	case err != nil:
		payload = msg.ErrorResFrom(err)
	case resp != nil:
		payload = resp
	default:
		payload = msg.Ack{}
	}
	src, lerr := n.lookup(env.From)
	if lerr != nil {
		return // caller vanished; nothing to reply to
	}
	n.deliver(dst.id, src, msg.Envelope{From: dst.id, CorrID: env.CorrID, Reply: true, Msg: payload})
}

// ID implements Node.
func (nd *inprocNode) ID() msg.NodeID { return nd.id }

// Send implements Node. An open breaker toward the destination fails
// fast: one-way messages to a dark peer are pure loss anyway.
func (nd *inprocNode) Send(to msg.NodeID, m msg.Message) error {
	if nd.health.state(to) == PeerOpen {
		return ErrBreakerOpen
	}
	dst, err := nd.net.lookup(to)
	if err != nil {
		return err
	}
	nd.net.deliver(nd.id, dst, msg.Envelope{From: nd.id, Msg: m})
	return nil
}

// Call implements Node: CallAsync followed by Wait.
func (nd *inprocNode) Call(ctx context.Context, to msg.NodeID, m msg.Message) (msg.Message, error) {
	p, err := nd.CallAsync(ctx, to, m)
	if err != nil {
		return nil, err
	}
	return p.Wait(ctx)
}

// CallAsync implements Node.
func (nd *inprocNode) CallAsync(ctx context.Context, to msg.NodeID, m msg.Message) (*PendingCall, error) {
	if err := nd.health.allow(to); err != nil {
		return nil, err
	}
	dst, err := nd.net.lookup(to)
	if err != nil {
		nd.health.abortProbe(to)
		return nil, err
	}
	deadline := callDeadline(ctx, nd.net.opts.CallTimeout)
	id, ch, rerr := nd.calls.register(ctx, to, deadline)
	if rerr != nil {
		nd.health.abortProbe(to)
		return nil, rerr
	}
	nd.net.deliver(nd.id, dst, msg.Envelope{From: nd.id, CorrID: id, Msg: m})
	return &PendingCall{c: nd.calls, id: id, ch: ch}, nil
}

// countRetry feeds the network's wire_retries counter (retryCounter).
func (nd *inprocNode) countRetry() {
	if nd.net.retries != nil {
		nd.net.retries.Inc()
	}
}

// PendingCalls implements Node.
func (nd *inprocNode) PendingCalls() int { return nd.calls.pending() }

// Close implements Node.
func (nd *inprocNode) Close() error {
	nd.net.mu.Lock()
	delete(nd.net.nodes, nd.id)
	nd.net.mu.Unlock()
	nd.calls.close()
	return nil
}
