package transport

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"locsvc/internal/msg"
)

// InprocOptions configure the in-process network.
type InprocOptions struct {
	// Latency, if non-nil, returns the one-way delivery delay between two
	// nodes. Use it to model the paper's LAN (e.g. a few hundred
	// microseconds per hop) or wide-area placements.
	Latency func(from, to msg.NodeID) time.Duration
	// DropRate is the probability in [0,1] that a one-way message is
	// silently lost, modelling UDP loss for failure-injection tests.
	// Replies to calls are subject to the same loss.
	DropRate float64
	// Seed seeds the drop decision; zero uses a fixed default.
	Seed int64
	// OnDeliver, if non-nil, observes every delivered message; used by
	// the simulation harness to count messages and hops.
	OnDeliver func(from, to msg.NodeID, m msg.Message)
}

// Inproc is an in-process Network: nodes are handler functions invoked on
// dedicated goroutines per delivery.
type Inproc struct {
	mu     sync.RWMutex
	nodes  map[msg.NodeID]*inprocNode
	opts   InprocOptions
	wg     sync.WaitGroup
	closed bool

	dropMu sync.Mutex
	rng    *rand.Rand
}

var _ Network = (*Inproc)(nil)

// NewInproc creates an in-process network.
func NewInproc(opts InprocOptions) *Inproc {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Inproc{
		nodes: make(map[msg.NodeID]*inprocNode),
		opts:  opts,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

type inprocNode struct {
	id      msg.NodeID
	net     *Inproc
	handler Handler
	calls   *calls
}

var _ Node = (*inprocNode)(nil)

// Attach implements Network.
func (n *Inproc) Attach(id msg.NodeID, h Handler) (Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.nodes[id]; ok {
		return nil, ErrDuplicateID
	}
	node := &inprocNode{id: id, net: n, handler: h, calls: newCalls()}
	n.nodes[id] = node
	return node, nil
}

// Close implements Network. It waits up to a grace period for in-flight
// deliveries so tests do not leak handler goroutines.
func (n *Inproc) Close() error {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	done := make(chan struct{})
	go func() {
		n.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
	}
	return nil
}

// lookup returns the destination node.
func (n *Inproc) lookup(id msg.NodeID) (*inprocNode, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.closed {
		return nil, ErrClosed
	}
	node, ok := n.nodes[id]
	if !ok {
		return nil, ErrUnknownNode
	}
	return node, nil
}

// shouldDrop draws a loss decision.
func (n *Inproc) shouldDrop() bool {
	if n.opts.DropRate <= 0 {
		return false
	}
	n.dropMu.Lock()
	defer n.dropMu.Unlock()
	return n.rng.Float64() < n.opts.DropRate
}

// deliver runs the full delivery pipeline on a fresh goroutine: latency,
// loss, observation, then handler dispatch or reply matching.
func (n *Inproc) deliver(from msg.NodeID, dst *inprocNode, env msg.Envelope) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		if n.shouldDrop() {
			return
		}
		if lat := n.opts.Latency; lat != nil {
			if d := lat(from, dst.id); d > 0 {
				time.Sleep(d)
			}
		}
		if obs := n.opts.OnDeliver; obs != nil {
			obs(from, dst.id, env.Msg)
		}
		if env.Reply {
			dst.calls.deliver(env.CorrID, env.Msg)
			return
		}
		resp, err := dst.handler(context.Background(), env.From, env.Msg)
		if env.CorrID == 0 {
			return // one-way message; response (if any) is discarded
		}
		var payload msg.Message
		switch {
		case err != nil:
			payload = msg.ErrorResFrom(err)
		case resp != nil:
			payload = resp
		default:
			payload = msg.Ack{}
		}
		src, lerr := n.lookup(env.From)
		if lerr != nil {
			return // caller vanished; nothing to reply to
		}
		n.deliver(dst.id, src, msg.Envelope{From: dst.id, CorrID: env.CorrID, Reply: true, Msg: payload})
	}()
}

// ID implements Node.
func (nd *inprocNode) ID() msg.NodeID { return nd.id }

// Send implements Node.
func (nd *inprocNode) Send(to msg.NodeID, m msg.Message) error {
	dst, err := nd.net.lookup(to)
	if err != nil {
		return err
	}
	nd.net.deliver(nd.id, dst, msg.Envelope{From: nd.id, Msg: m})
	return nil
}

// Call implements Node.
func (nd *inprocNode) Call(ctx context.Context, to msg.NodeID, m msg.Message) (msg.Message, error) {
	dst, err := nd.net.lookup(to)
	if err != nil {
		return nil, err
	}
	corr, ch := nd.calls.register()
	nd.net.deliver(nd.id, dst, msg.Envelope{From: nd.id, CorrID: corr, Msg: m})
	return nd.calls.await(ctx, corr, ch)
}

// Close implements Node.
func (nd *inprocNode) Close() error {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	delete(nd.net.nodes, nd.id)
	return nil
}
