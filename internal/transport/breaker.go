package transport

import (
	"sync"
	"time"

	"locsvc/internal/metrics"
	"locsvc/internal/msg"
)

// Per-peer circuit breakers. Every node tracks consecutive-failure state
// for each destination it calls, fed by the in-flight tracker's outcome
// hook: a reply (even an error frame) proves the peer alive, a swept
// timeout counts against it. After breakerThreshold consecutive failures
// the breaker opens and calls to that peer fail fast with ErrBreakerOpen —
// no datagram written, no in-flight slot burned — until the cooldown
// elapses, after which exactly one probe call half-opens the breaker; its
// outcome closes or reopens it.

// PeerState is the breaker state of one destination as seen by one node.
type PeerState int

// Breaker states, in escalation order. The zero value is closed (healthy).
const (
	// PeerClosed: calls flow normally.
	PeerClosed PeerState = iota
	// PeerOpen: calls fail fast until the cooldown elapses.
	PeerOpen
	// PeerHalfOpen: one probe call is in flight; everything else still
	// fails fast until the probe resolves.
	PeerHalfOpen
)

// String names the state for gauges and logs.
func (s PeerState) String() string {
	switch s {
	case PeerClosed:
		return "closed"
	case PeerOpen:
		return "open"
	case PeerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// gaugeValue is the numeric encoding used for peer_state gauges:
// 0 closed, 1 open, 2 half-open (matching the constant order).
func (s PeerState) gaugeValue() int64 { return int64(s) }

// breakerConfig tunes a node's per-peer health tracking. A zero threshold
// disables breakers entirely (no map, no overhead on the call path).
type breakerConfig struct {
	// threshold is the consecutive-failure count that opens a breaker.
	threshold int
	// cooldown is how long an open breaker refuses calls before allowing
	// a half-open probe. Zero uses defaultBreakerCooldown.
	cooldown time.Duration
	// owner names the observing node in peer_state gauge names.
	owner msg.NodeID
	// metrics, when non-nil, receives peer_state gauges and the
	// wire_breaker_open fail-fast counter.
	metrics *metrics.Registry
}

// defaultBreakerCooldown is the open→half-open probe interval when none is
// configured.
const defaultBreakerCooldown = time.Second

// peerHealth is the breaker state for one destination.
type peerHealth struct {
	fails    int
	state    PeerState
	openedAt time.Time
}

// health tracks breaker state per destination for one node. A nil *health
// is valid and means "breakers disabled": every method is a cheap no-op,
// so call sites need no feature flag.
type health struct {
	cfg      breakerConfig
	failFast *metrics.Counter

	mu    sync.Mutex
	peers map[msg.NodeID]*peerHealth
}

func newHealth(cfg breakerConfig) *health {
	if cfg.threshold <= 0 {
		return nil
	}
	if cfg.cooldown <= 0 {
		cfg.cooldown = defaultBreakerCooldown
	}
	h := &health{cfg: cfg, peers: make(map[msg.NodeID]*peerHealth)}
	if cfg.metrics != nil {
		h.failFast = cfg.metrics.Counter("wire_breaker_open")
	}
	return h
}

// allow reports whether a call to dst may proceed. An open breaker past
// its cooldown transitions to half-open and admits the caller as the
// probe; otherwise open and half-open (probe already out) refuse with
// ErrBreakerOpen.
func (h *health) allow(to msg.NodeID) error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peers[to]
	if p == nil {
		return nil
	}
	switch p.state {
	case PeerClosed:
		return nil
	case PeerOpen:
		if time.Since(p.openedAt) >= h.cfg.cooldown {
			p.state = PeerHalfOpen
			h.gauge(to, p.state)
			return nil // this caller is the probe
		}
	case PeerHalfOpen:
		// A probe is already in flight; fail fast until it resolves.
	}
	if h.failFast != nil {
		h.failFast.Inc()
	}
	return ErrBreakerOpen
}

// success records a completed call: any reply (including a late one while
// the breaker is open) proves the peer alive and closes its breaker.
func (h *health) success(to msg.NodeID) {
	if h == nil {
		return
	}
	h.mu.Lock()
	p := h.peers[to]
	if p != nil && (p.fails != 0 || p.state != PeerClosed) {
		p.fails = 0
		if p.state != PeerClosed {
			p.state = PeerClosed
			h.gauge(to, p.state)
		}
	}
	h.mu.Unlock()
}

// failure records a swept timeout: threshold consecutive failures open the
// breaker; a failed half-open probe reopens it for another cooldown.
func (h *health) failure(to msg.NodeID) {
	if h == nil {
		return
	}
	h.mu.Lock()
	p := h.peers[to]
	if p == nil {
		p = &peerHealth{}
		h.peers[to] = p
	}
	p.fails++
	if p.state == PeerHalfOpen || (p.state == PeerClosed && p.fails >= h.cfg.threshold) {
		p.state = PeerOpen
		p.openedAt = time.Now()
		h.gauge(to, p.state)
	}
	h.mu.Unlock()
}

// abortProbe reverts a half-open breaker to open when its admitted probe
// could not even be sent (destination lookup or in-flight slot failed), so
// the breaker is not stuck half-open with no probe in flight. Other states
// are untouched.
func (h *health) abortProbe(to msg.NodeID) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if p := h.peers[to]; p != nil && p.state == PeerHalfOpen {
		p.state = PeerOpen
		p.openedAt = time.Now()
		h.gauge(to, p.state)
	}
	h.mu.Unlock()
}

// outcome is the tracker hook form of success/failure.
func (h *health) outcome(to msg.NodeID, ok bool) {
	if ok {
		h.success(to)
	} else {
		h.failure(to)
	}
}

// state returns the current breaker state for dst (PeerClosed when
// untracked or breakers are disabled).
func (h *health) state(to msg.NodeID) PeerState {
	if h == nil {
		return PeerClosed
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if p := h.peers[to]; p != nil {
		return p.state
	}
	return PeerClosed
}

// gauge publishes a state change; called with h.mu held.
func (h *health) gauge(to msg.NodeID, s PeerState) {
	if h.cfg.metrics == nil {
		return
	}
	h.cfg.metrics.Gauge("peer_state." + string(h.cfg.owner) + "->" + string(to)).Set(s.gaugeValue())
}
