package transport

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locsvc/internal/metrics"
	"locsvc/internal/msg"
)

// TestMultiplexSoak is the race-detector soak for the multiplexed client:
// many goroutines issue calls through ONE node against a real UDP server
// while injected loss eats a fifth of the datagrams. Every call must end —
// as a success or as a timeout — with no leaked in-flight entries and
// metrics that balance against the outcome counts.
func TestMultiplexSoak(t *testing.T) {
	const (
		workers   = 16
		perWorker = 50
		total     = workers * perWorker
	)
	reg := metrics.NewRegistry()
	nw := NewUDPWithOptions(UDPOptions{
		Metrics:       reg,
		BatchMax:      8,
		BatchLinger:   time.Millisecond,
		CallTimeout:   150 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
		MaxInFlight:   64,
	})
	defer nw.Close()
	nw.SetLoss(0.2, 20260807)

	if _, err := nw.Attach("server", valueEchoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := nw.Attach("client", nil)
	if err != nil {
		t.Fatal(err)
	}

	var ok, timedOut, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				want := float64(w*perWorker + i)
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				resp, err := cli.Call(ctx, "server", msg.ChangeAccReq{OID: "o", DesAcc: want})
				cancel()
				switch {
				case err == nil:
					res, isRes := resp.(msg.ChangeAccRes)
					if !isRes || res.OfferedAcc != want {
						t.Errorf("worker %d call %d: got %#v, want echo %v (crossed reply)", w, i, resp, want)
					}
					ok.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					timedOut.Add(1)
				default:
					other.Add(1)
					t.Errorf("worker %d call %d: unexpected error %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := ok.Load() + timedOut.Load() + other.Load(); got != total {
		t.Fatalf("accounted for %d calls, want %d", got, total)
	}
	if ok.Load() == 0 {
		t.Fatal("no call succeeded under 20%% loss — transport broken, not lossy")
	}
	if timedOut.Load() == 0 {
		t.Fatal("no call timed out under 20%% loss — loss injection inert")
	}
	t.Logf("soak: %d ok, %d timed out, loss_injected=%d, late_replies=%d, call_timeouts=%d",
		ok.Load(), timedOut.Load(),
		reg.Counter("wire_loss_injected").Value(),
		reg.Counter("wire_late_replies").Value(),
		reg.Counter("wire_call_timeouts").Value())

	// No leaked in-flight entries once the dust settles.
	waitQuiesced(t, cli)

	// Metrics must balance: every injected drop is counted, and the
	// tracker resolved at least every ctx-independent timeout through the
	// sweeper or saw the reply late.
	if reg.Counter("wire_loss_injected").Value() == 0 {
		t.Error("wire_loss_injected = 0 with SetLoss(0.2)")
	}
	if to := reg.Counter("wire_call_timeouts").Value(); to < timedOut.Load() {
		t.Errorf("wire_call_timeouts = %d, but %d calls timed out", to, timedOut.Load())
	}
	// Everything that went out was counted; batching may compress
	// datagrams but never envelopes.
	if out, in := reg.Counter("wire_envelopes_out").Value(), reg.Counter("wire_envelopes_in").Value(); out < int64(total) || in > out {
		t.Errorf("envelope counters out=%d in=%d for %d calls", out, in, total)
	}
}
