package transport

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/msg"
)

// Call-path retries. A lost datagram (request or reply) surfaces as a
// swept timeout; for idempotent operations the cheapest fix is simply
// asking again. CallWithRetry wraps Node.Call with a bounded retry budget
// using exponential backoff and full jitter, retrying only errors that
// plausibly clear on their own: timeouts and open breakers. The message is
// re-sent verbatim, so operations with side effects must carry a per-sender
// Seq (UpdateReq, RegisterReq) and rely on the receiver's dedupe window for
// exactly-once application; see the wire package doc's retry-idempotency
// rules.

// RetryPolicy bounds a retried call.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values below 1 mean a single attempt — no retries.
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule: before attempt i+1 the
	// caller sleeps uniform[0, min(BaseBackoff·2^i, MaxBackoff)) — "full
	// jitter", which decorrelates retry bursts from many senders hitting
	// one recovering server. Zero defaults to 20ms.
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff draw. Zero defaults to 1s.
	MaxBackoff time.Duration
	// PerTryTimeout bounds each attempt with its own deadline, so one
	// lost datagram costs one try's budget, not the whole operation's.
	// Zero leaves the caller's context (and the network's call-timeout
	// cap) in charge.
	PerTryTimeout time.Duration
}

// Enabled reports whether the policy actually retries.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// DefaultRetryPolicy is a sane client-side budget: 4 attempts keep the
// failure probability negligible at realistic loss rates (20% loss each
// way ≈ 0.36 per-attempt failure ≈ 1.7% after 4 tries) while bounding the
// worst-case added latency to well under a second.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 20 * time.Millisecond, MaxBackoff: time.Second}
}

// Retryable reports whether err is worth another attempt: swept or local
// timeouts (the datagram or its reply was probably lost) and open breakers
// (the cooldown may have elapsed by the next backoff). Remote application
// errors (not_found, out_of_area, …) are deterministic and returned as is.
func Retryable(err error) bool {
	return errors.Is(err, core.ErrTimeout) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrBreakerOpen)
}

// retryCounter is implemented by nodes whose network counts retries into
// its metrics registry (wire_retries).
type retryCounter interface{ countRetry() }

// CountRetry feeds the node network's wire_retries counter, when it keeps
// one. Manual retry loops — operations that cannot ride CallWithRetry, like
// the client's one-way registration re-send — call it once per retry so the
// counter stays a complete picture.
func CountRetry(nd Node) {
	if rc, ok := nd.(retryCounter); ok {
		rc.countRetry()
	}
}

// Backoff draws the full-jitter sleep before attempt attempt+1 (attempt is
// the 1-based count of attempts already made): uniform[0, min(Base·2^(a-1),
// Max)).
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = time.Second
	}
	backoff := base << (attempt - 1)
	if backoff > maxB || backoff <= 0 {
		backoff = maxB
	}
	return jitter(backoff)
}

// retryRNG is the shared jitter source. Backoff draws are rare (one per
// retry, not per call), so one locked source is fine.
var retryRNG = struct {
	sync.Mutex
	r *rand.Rand
}{r: rand.New(rand.NewSource(time.Now().UnixNano()))}

// jitter draws uniform[0, d).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	retryRNG.Lock()
	defer retryRNG.Unlock()
	return time.Duration(retryRNG.r.Int63n(int64(d)))
}

// CallWithRetry performs nd.Call(ctx, dest(), m) under pol. dest is
// re-read before every attempt so a retry follows agent rebinding (an
// UpdateRes.Moved applied between attempts) and entry-server changes.
// The last error is returned when the budget is exhausted; non-retryable
// errors return immediately.
func CallWithRetry(ctx context.Context, nd Node, dest func() msg.NodeID, m msg.Message, pol RetryPolicy) (msg.Message, error) {
	attempts := pol.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			CountRetry(nd)
			select {
			case <-time.After(pol.Backoff(i)):
			case <-ctx.Done():
				return nil, lastErr
			}
		}
		tryCtx := ctx
		if pol.PerTryTimeout > 0 {
			var cancel context.CancelFunc
			tryCtx, cancel = context.WithTimeout(ctx, pol.PerTryTimeout)
			res, err := nd.Call(tryCtx, dest(), m)
			cancel()
			if err == nil {
				return res, nil
			}
			lastErr = err
		} else {
			res, err := nd.Call(tryCtx, dest(), m)
			if err == nil {
				return res, nil
			}
			lastErr = err
		}
		if !Retryable(lastErr) || ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}
