package transport

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/metrics"
	"locsvc/internal/msg"
)

// TestOversizeEnvelopeFailsAtEncode verifies the encode-time datagram size
// guard: an envelope that would exceed maxDatagram is rejected before the
// socket write with the message type and encoded size, instead of the
// opaque "message too long" the kernel used to return.
func TestOversizeEnvelopeFailsAtEncode(t *testing.T) {
	nw := NewUDP()
	defer nw.Close()
	if _, err := nw.Attach("sink", nil); err != nil {
		t.Fatal(err)
	}
	src, err := nw.Attach("src", nil)
	if err != nil {
		t.Fatal(err)
	}

	// ~40 bytes per entry: 4k entries are ~160 KiB, past the 65,507-byte
	// UDP payload cap.
	objs := make([]core.Entry, 4_000)
	for i := range objs {
		objs[i] = core.Entry{
			OID: core.OID(fmt.Sprintf("object-%08d", i)),
			LD:  core.LocationDescriptor{Pos: geo.Pt(float64(i), float64(i)), Acc: 10},
		}
	}
	err = src.Send("sink", msg.RangeQueryRes{Objs: objs, Servers: 4})
	if err == nil {
		t.Fatal("oversize envelope sent without error")
	}
	for _, want := range []string{"RangeQueryRes", "exceeding", "65507"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if got := nw.Metrics().Counter("wire_oversize_dropped").Value(); got != 1 {
		t.Errorf("wire_oversize_dropped = %d, want 1", got)
	}
	// Nothing hit the wire.
	if got := nw.Metrics().Counter("wire_datagrams_out").Value(); got != 0 {
		t.Errorf("wire_datagrams_out = %d, want 0", got)
	}
}

// TestWireMetricsCounters checks the wire-level observability satellite:
// bytes and datagrams are counted in both directions on a shared registry,
// and malformed datagrams bump the decode-error counter instead of
// disappearing silently.
func TestWireMetricsCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	nw := NewUDPWithMetrics(reg)
	defer nw.Close()
	if nw.Metrics() != reg {
		t.Fatal("Metrics() did not return the shared registry")
	}

	if _, err := nw.Attach("server", func(context.Context, msg.NodeID, msg.Message) (msg.Message, error) {
		return msg.UpdateRes{OfferedAcc: 25}, nil
	}); err != nil {
		t.Fatal(err)
	}
	client, err := nw.Attach("client", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := client.Call(ctx, "server", msg.UpdateReq{S: core.Sighting{OID: "o1", Pos: geo.Pt(1, 2), SensAcc: 3}}); err != nil {
		t.Fatal(err)
	}

	// Request and reply, both sent and received inside this process: two
	// datagrams out, two in, symmetric byte counts.
	if got := reg.Counter("wire_datagrams_out").Value(); got != 2 {
		t.Errorf("wire_datagrams_out = %d, want 2", got)
	}
	if got := reg.Counter("wire_datagrams_in").Value(); got != 2 {
		t.Errorf("wire_datagrams_in = %d, want 2", got)
	}
	out, in := reg.Counter("wire_bytes_out").Value(), reg.Counter("wire_bytes_in").Value()
	if out == 0 || out != in {
		t.Errorf("wire_bytes_out = %d, wire_bytes_in = %d; want equal and nonzero", out, in)
	}

	// A garbage datagram straight at the server's socket must count as a
	// decode error (and not kill the read loop).
	addr, ok := nw.Route("server")
	if !ok {
		t.Fatal("server route missing")
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("definitely not an envelope")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("wire_decode_errors").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("decode error never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The loop survived: the same client call still works.
	if _, err := client.Call(ctx, "server", msg.UpdateReq{S: core.Sighting{OID: "o2", Pos: geo.Pt(3, 4), SensAcc: 5}}); err != nil {
		t.Fatalf("call after garbage datagram: %v", err)
	}
}
