package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/metrics"
	"locsvc/internal/msg"
)

// breakerNet builds an inproc network with fast sweeping and breakers armed.
func breakerNet(t *testing.T, threshold int, cooldown time.Duration, reg *metrics.Registry) *Inproc {
	t.Helper()
	net := NewInproc(InprocOptions{
		CallTimeout:      30 * time.Millisecond,
		SweepInterval:    5 * time.Millisecond,
		BreakerThreshold: threshold,
		BreakerCooldown:  cooldown,
		Metrics:          reg,
	})
	t.Cleanup(func() { net.Close() })
	return net
}

// TestBreakerOpensAndFailsFast pins the breaker state machine's first half:
// threshold consecutive swept timeouts toward a dark peer open the breaker,
// after which calls fail fast with ErrBreakerOpen — no in-flight entry, no
// timeout wait.
func TestBreakerOpensAndFailsFast(t *testing.T) {
	reg := metrics.NewRegistry()
	net := breakerNet(t, 3, time.Hour, reg) // cooldown never elapses in-test
	if _, err := net.Attach("srv", valueEchoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", valueEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	net.SetNodeDown("srv", true)

	// Three consecutive timeouts open the breaker.
	for i := 0; i < 3; i++ {
		_, cerr := cli.Call(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: 1})
		if !errors.Is(cerr, core.ErrTimeout) {
			t.Fatalf("call %d to dark peer: err = %v, want timeout", i, cerr)
		}
	}
	if st := net.PeerState("cli", "srv"); st != PeerOpen {
		t.Fatalf("after %d timeouts breaker state = %v, want open", 3, st)
	}

	// Open breaker: fail fast, well under the 30ms call timeout.
	start := time.Now()
	_, cerr := cli.Call(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: 2})
	if !errors.Is(cerr, ErrBreakerOpen) {
		t.Fatalf("open-breaker call err = %v, want ErrBreakerOpen", cerr)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("open-breaker call took %v, want fail-fast", elapsed)
	}
	if got := reg.Counter("wire_breaker_open").Value(); got == 0 {
		t.Fatal("wire_breaker_open counter not incremented")
	}
	if cli.PendingCalls() != 0 {
		t.Fatalf("fail-fast call left %d in-flight entries", cli.PendingCalls())
	}
	// Sends are refused too: no point writing datagrams at a dark peer.
	if serr := cli.Send("srv", msg.NotifyAvailAcc{OID: "o"}); !errors.Is(serr, ErrBreakerOpen) {
		t.Fatalf("open-breaker send err = %v, want ErrBreakerOpen", serr)
	}
}

// TestBreakerHalfOpensAndCloses pins the second half: after the cooldown
// one probe call is admitted; its success closes the breaker and traffic
// flows again, within one probe interval of the peer's recovery.
func TestBreakerHalfOpensAndCloses(t *testing.T) {
	const cooldown = 50 * time.Millisecond
	net := breakerNet(t, 2, cooldown, nil)
	if _, err := net.Attach("srv", valueEchoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", valueEchoHandler)
	if err != nil {
		t.Fatal(err)
	}

	net.SetNodeDown("srv", true)
	for i := 0; i < 2; i++ {
		cli.Call(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: 1})
	}
	if st := net.PeerState("cli", "srv"); st != PeerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}

	// Peer recovers; after the cooldown the next call is the probe and
	// must close the breaker.
	net.SetNodeDown("srv", false)
	time.Sleep(cooldown + 10*time.Millisecond)
	resp, cerr := cli.Call(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: 42})
	if cerr != nil {
		t.Fatalf("probe call after recovery: %v", cerr)
	}
	if res, ok := resp.(msg.ChangeAccRes); !ok || res.OfferedAcc != 42 {
		t.Fatalf("probe call got %#v", resp)
	}
	if st := net.PeerState("cli", "srv"); st != PeerClosed {
		t.Fatalf("breaker state after successful probe = %v, want closed", st)
	}
}

// TestBreakerFailedProbeReopens pins the probe-failure edge: a half-open
// breaker whose probe times out goes back to open for another cooldown, and
// concurrent calls while the probe is out fail fast.
func TestBreakerFailedProbeReopens(t *testing.T) {
	const cooldown = 40 * time.Millisecond
	net := breakerNet(t, 2, cooldown, nil)
	if _, err := net.Attach("srv", valueEchoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", valueEchoHandler)
	if err != nil {
		t.Fatal(err)
	}

	net.SetNodeDown("srv", true)
	for i := 0; i < 2; i++ {
		cli.Call(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: 1})
	}
	time.Sleep(cooldown + 10*time.Millisecond)

	// Peer still dark: the probe goes out (half-open) and times out.
	done := make(chan error, 1)
	go func() {
		_, perr := cli.Call(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: 2})
		done <- perr
	}()
	// While the probe is in flight, other calls fail fast.
	time.Sleep(5 * time.Millisecond)
	if _, cerr := cli.Call(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: 3}); !errors.Is(cerr, ErrBreakerOpen) {
		t.Fatalf("call during probe err = %v, want ErrBreakerOpen", cerr)
	}
	if perr := <-done; !errors.Is(perr, core.ErrTimeout) {
		t.Fatalf("probe err = %v, want timeout", perr)
	}
	if st := net.PeerState("cli", "srv"); st != PeerOpen {
		t.Fatalf("breaker state after failed probe = %v, want open again", st)
	}
	waitQuiesced(t, cli)
}

// TestAsymmetricPartition pins Block's directedness: with cli→srv blocked,
// nothing from cli reaches srv (requests, and crucially also the replies to
// srv's own calls) while srv's messages still reach cli — the classic
// asymmetric-link failure where one side believes the other is dark.
func TestAsymmetricPartition(t *testing.T) {
	var atSrv, atCli atomic.Int64
	counting := func(n *atomic.Int64) Handler {
		return func(_ context.Context, _ msg.NodeID, _ msg.Message) (msg.Message, error) {
			n.Add(1)
			return nil, nil
		}
	}
	const cooldown = 30 * time.Millisecond
	net := breakerNet(t, 1, cooldown, nil)
	srv, err := net.Attach("srv", counting(&atSrv))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", counting(&atCli))
	if err != nil {
		t.Fatal(err)
	}
	net.Block("cli", "srv", true)

	// Blocked direction: the request never arrives, the call times out,
	// and one timeout opens cli's breaker (threshold 1).
	if _, cerr := cli.Call(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: 1}); !errors.Is(cerr, core.ErrTimeout) {
		t.Fatalf("blocked-direction call err = %v, want timeout", cerr)
	}
	if got := atSrv.Load(); got != 0 {
		t.Fatalf("blocked direction delivered %d messages", got)
	}
	if st := net.PeerState("cli", "srv"); st != PeerOpen {
		t.Fatalf("cli->srv breaker = %v, want open (threshold 1)", st)
	}

	// Live direction: srv's one-way messages still land at cli. (srv's
	// request/response calls would time out too — their replies travel
	// the blocked link — which is exactly the asymmetric failure mode.)
	if serr := srv.Send("cli", msg.NotifyAvailAcc{OID: "o"}); serr != nil {
		t.Fatalf("live-direction send failed: %v", serr)
	}
	deadline := time.Now().Add(time.Second)
	for atCli.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := atCli.Load(); got == 0 {
		t.Fatal("live direction delivered nothing")
	}

	// Healing the link lets the post-cooldown probe through; the probe's
	// auto-acknowledged success closes cli's breaker.
	net.Block("cli", "srv", false)
	time.Sleep(cooldown + 10*time.Millisecond)
	if _, cerr := cli.Call(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: 2}); cerr != nil {
		t.Fatalf("post-heal probe call failed: %v", cerr)
	}
	if atSrv.Load() == 0 {
		t.Fatal("healed direction delivered nothing")
	}
	if st := net.PeerState("cli", "srv"); st != PeerClosed {
		t.Fatalf("breaker after heal = %v, want closed", st)
	}
	waitQuiesced(t, cli)
}

// TestCallWithRetrySucceedsUnderLoss pins the retry loop: under heavy
// deterministic request loss a retried call still lands, the wire_retries
// counter records the extra attempts, and the fault-free path performs no
// retries at all.
func TestCallWithRetrySucceedsUnderLoss(t *testing.T) {
	reg := metrics.NewRegistry()
	drops := 3 // drop the first three requests, then deliver
	net := NewInproc(InprocOptions{
		CallTimeout:   20 * time.Millisecond,
		SweepInterval: 5 * time.Millisecond,
		Metrics:       reg,
		FaultPlan: func(_, _ msg.NodeID, env msg.Envelope) Fault {
			if !env.Reply && drops > 0 {
				drops--
				return Fault{Drop: true}
			}
			return Fault{}
		},
	})
	defer net.Close()
	if _, err := net.Attach("srv", valueEchoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", valueEchoHandler)
	if err != nil {
		t.Fatal(err)
	}

	pol := RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	dest := func() msg.NodeID { return "srv" }
	resp, err := CallWithRetry(context.Background(), cli, dest, msg.ChangeAccReq{OID: "o", DesAcc: 7}, pol)
	if err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if res, ok := resp.(msg.ChangeAccRes); !ok || res.OfferedAcc != 7 {
		t.Fatalf("retried call got %#v", resp)
	}
	if got := reg.Counter("wire_retries").Value(); got != 3 {
		t.Fatalf("wire_retries = %d, want 3", got)
	}
	// Fault-free call: no further retries counted.
	if _, err := CallWithRetry(context.Background(), cli, dest, msg.ChangeAccReq{OID: "o", DesAcc: 8}, pol); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("wire_retries").Value(); got != 3 {
		t.Fatalf("wire_retries after clean call = %d, want still 3", got)
	}
	waitQuiesced(t, cli)
}

// TestRetryNonRetryableReturnsImmediately pins the budget guard: a
// deterministic application error consumes exactly one attempt.
func TestRetryNonRetryableReturnsImmediately(t *testing.T) {
	calls := 0
	handler := func(_ context.Context, _ msg.NodeID, _ msg.Message) (msg.Message, error) {
		calls++
		return nil, core.ErrNotFound
	}
	net := NewInproc(InprocOptions{})
	defer net.Close()
	if _, err := net.Attach("srv", handler); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", valueEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	pol := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond}
	_, cerr := CallWithRetry(context.Background(), cli, func() msg.NodeID { return "srv" },
		msg.ChangeAccReq{OID: "o"}, pol)
	if !errors.Is(cerr, core.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", cerr)
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times for a non-retryable error, want 1", calls)
	}
}

// TestRetryOnOpenBreaker pins the interplay of the two mechanisms: an open
// breaker fails attempts fast, and once the peer recovers past the cooldown
// a later attempt in the same budget succeeds — the retry loop rides the
// breaker's probe.
func TestRetryOnOpenBreaker(t *testing.T) {
	net := NewInproc(InprocOptions{
		CallTimeout:      15 * time.Millisecond,
		SweepInterval:    5 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  30 * time.Millisecond,
	})
	defer net.Close()
	if _, err := net.Attach("srv", valueEchoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", valueEchoHandler)
	if err != nil {
		t.Fatal(err)
	}

	// Trip the breaker.
	net.SetNodeDown("srv", true)
	cli.Call(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: 1})
	if st := net.PeerState("cli", "srv"); st != PeerOpen {
		t.Fatalf("breaker = %v, want open", st)
	}
	// Recover; a retried call must get through via the probe even though
	// its first attempts hit the open breaker.
	net.SetNodeDown("srv", false)
	pol := RetryPolicy{MaxAttempts: 6, BaseBackoff: 15 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	resp, cerr := CallWithRetry(context.Background(), cli, func() msg.NodeID { return "srv" },
		msg.ChangeAccReq{OID: "o", DesAcc: 9}, pol)
	if cerr != nil {
		t.Fatalf("retried call across breaker recovery failed: %v", cerr)
	}
	if res, ok := resp.(msg.ChangeAccRes); !ok || res.OfferedAcc != 9 {
		t.Fatalf("got %#v", resp)
	}
	if st := net.PeerState("cli", "srv"); st != PeerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", st)
	}
	waitQuiesced(t, cli)
}
