package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/msg"
)

// echoHandler replies to UpdateReq with UpdateRes and errors on PosQueryReq.
func echoHandler(t *testing.T) Handler {
	t.Helper()
	return func(_ context.Context, from msg.NodeID, m msg.Message) (msg.Message, error) {
		switch m.(type) {
		case msg.UpdateReq:
			return msg.UpdateRes{OfferedAcc: 25}, nil
		case msg.PosQueryReq:
			return nil, core.ErrNotFound
		default:
			return nil, nil
		}
	}
}

// networks builds one instance of each transport for cross-implementation
// table tests.
func networks(t *testing.T) map[string]Network {
	t.Helper()
	return map[string]Network{
		"inproc": NewInproc(InprocOptions{}),
		"udp":    NewUDP(),
	}
}

func TestCallRoundTrip(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			if _, err := nw.Attach("server", echoHandler(t)); err != nil {
				t.Fatal(err)
			}
			client, err := nw.Attach("client", func(context.Context, msg.NodeID, msg.Message) (msg.Message, error) {
				return nil, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			resp, err := client.Call(ctx, "server", msg.UpdateReq{})
			if err != nil {
				t.Fatalf("Call: %v", err)
			}
			res, ok := resp.(msg.UpdateRes)
			if !ok || res.OfferedAcc != 25 {
				t.Errorf("resp = %#v", resp)
			}
		})
	}
}

func TestCallErrorPropagation(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			if _, err := nw.Attach("server", echoHandler(t)); err != nil {
				t.Fatal(err)
			}
			client, err := nw.Attach("client", nil)
			if err != nil {
				t.Fatal(err)
			}
			_ = client
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, err = client.Call(ctx, "server", msg.PosQueryReq{OID: "ghost"})
			if !errors.Is(err, core.ErrNotFound) {
				t.Errorf("err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestSendOneWay(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			got := make(chan msg.Message, 1)
			if _, err := nw.Attach("sink", func(_ context.Context, _ msg.NodeID, m msg.Message) (msg.Message, error) {
				got <- m
				return nil, nil
			}); err != nil {
				t.Fatal(err)
			}
			src, err := nw.Attach("src", nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := src.Send("sink", msg.RemovePath{OID: "o1"}); err != nil {
				t.Fatal(err)
			}
			select {
			case m := <-got:
				if rp, ok := m.(msg.RemovePath); !ok || rp.OID != "o1" {
					t.Errorf("got %#v", m)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("message never delivered")
			}
		})
	}
}

func TestUnknownDestination(t *testing.T) {
	nw := NewInproc(InprocOptions{})
	defer nw.Close()
	n, err := nw.Attach("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send("nowhere", msg.Ack{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Send err = %v", err)
	}
	if _, err := n.Call(context.Background(), "nowhere", msg.Ack{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Call err = %v", err)
	}

	unw := NewUDP()
	defer unw.Close()
	un, err := unw.Attach("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := un.Send("nowhere", msg.Ack{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("udp Send err = %v", err)
	}
}

func TestDuplicateAttach(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			if _, err := nw.Attach("n", nil); err != nil {
				t.Fatal(err)
			}
			if _, err := nw.Attach("n", nil); !errors.Is(err, ErrDuplicateID) {
				t.Errorf("err = %v", err)
			}
		})
	}
}

func TestCallTimeout(t *testing.T) {
	nw := NewInproc(InprocOptions{})
	defer nw.Close()
	if _, err := nw.Attach("slow", func(ctx context.Context, _ msg.NodeID, _ msg.Message) (msg.Message, error) {
		time.Sleep(200 * time.Millisecond)
		return msg.Ack{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	c, err := nw.Attach("client", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, "slow", msg.Ack{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestInprocLatency(t *testing.T) {
	const hop = 20 * time.Millisecond
	nw := NewInproc(InprocOptions{
		Latency: func(_, _ msg.NodeID) time.Duration { return hop },
	})
	defer nw.Close()
	if _, err := nw.Attach("server", echoHandler(t)); err != nil {
		t.Fatal(err)
	}
	c, err := nw.Attach("client", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Call(context.Background(), "server", msg.UpdateReq{}); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 2*hop {
		t.Errorf("round trip %v, want >= %v (two latency hops)", rtt, 2*hop)
	}
}

func TestInprocDropRate(t *testing.T) {
	var delivered atomic.Int64
	nw := NewInproc(InprocOptions{DropRate: 0.5, Seed: 42})
	if _, err := nw.Attach("sink", func(context.Context, msg.NodeID, msg.Message) (msg.Message, error) {
		delivered.Add(1)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	src, err := nw.Attach("src", nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := src.Send("sink", msg.Ack{}); err != nil {
			t.Fatal(err)
		}
	}
	nw.Close() // waits for in-flight deliveries
	got := delivered.Load()
	if got < 400 || got > 600 {
		t.Errorf("delivered %d of %d with 50%% drop", got, n)
	}
}

func TestInprocOnDeliverObserver(t *testing.T) {
	var count atomic.Int64
	nw := NewInproc(InprocOptions{
		OnDeliver: func(_, _ msg.NodeID, _ msg.Message) { count.Add(1) },
	})
	if _, err := nw.Attach("server", echoHandler(t)); err != nil {
		t.Fatal(err)
	}
	c, err := nw.Attach("client", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), "server", msg.UpdateReq{}); err != nil {
		t.Fatal(err)
	}
	nw.Close()
	// One request + one reply.
	if got := count.Load(); got != 2 {
		t.Errorf("observed %d deliveries, want 2", got)
	}
}

func TestConcurrentCalls(t *testing.T) {
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			if _, err := nw.Attach("server", echoHandler(t)); err != nil {
				t.Fatal(err)
			}
			client, err := nw.Attach("client", nil)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for i := 0; i < 64; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					defer cancel()
					resp, err := client.Call(ctx, "server", msg.UpdateReq{})
					if err != nil {
						errs <- err
						return
					}
					if _, ok := resp.(msg.UpdateRes); !ok {
						errs <- fmt.Errorf("bad resp %#v", resp)
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

func TestNestedCalls(t *testing.T) {
	// A calls B; B's handler calls C before replying — the pattern used
	// by handover processing (Algorithm 6-3).
	for name, nw := range networks(t) {
		t.Run(name, func(t *testing.T) {
			defer nw.Close()
			if _, err := nw.Attach("c", func(context.Context, msg.NodeID, msg.Message) (msg.Message, error) {
				return msg.HandoverRes{NewAgent: "c", OfferedAcc: 10}, nil
			}); err != nil {
				t.Fatal(err)
			}
			var bNode Node
			b, err := nw.Attach("b", func(ctx context.Context, _ msg.NodeID, m msg.Message) (msg.Message, error) {
				resp, err := bNode.Call(ctx, "c", m)
				if err != nil {
					return nil, err
				}
				hr := resp.(msg.HandoverRes)
				hr.Hops++
				return hr, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			bNode = b
			a, err := nw.Attach("a", nil)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			resp, err := a.Call(ctx, "b", msg.HandoverReq{})
			if err != nil {
				t.Fatal(err)
			}
			hr, ok := resp.(msg.HandoverRes)
			if !ok || hr.NewAgent != "c" || hr.Hops != 1 {
				t.Errorf("resp = %#v", resp)
			}
		})
	}
}

func TestUDPRouteDirectory(t *testing.T) {
	nw := NewUDP()
	defer nw.Close()
	if err := nw.AddRoute("remote", "127.0.0.1:45678"); err != nil {
		t.Fatal(err)
	}
	addr, ok := nw.Route("remote")
	if !ok || addr != "127.0.0.1:45678" {
		t.Errorf("Route = %q, %v", addr, ok)
	}
	if _, ok := nw.Route("missing"); ok {
		t.Error("missing route found")
	}
	if err := nw.AddRoute("bad", "not-an-address:xx"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestNodeCloseDetaches(t *testing.T) {
	nw := NewInproc(InprocOptions{})
	defer nw.Close()
	n, err := nw.Attach("x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach("x", nil); err != nil {
		t.Errorf("re-attach after close failed: %v", err)
	}
}
