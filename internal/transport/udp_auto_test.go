package transport

import (
	"context"
	"strings"
	"testing"
	"time"

	"locsvc/internal/msg"
)

func TestAttachAutoUsesAddressAsID(t *testing.T) {
	nw := NewUDP()
	defer nw.Close()
	n, err := nw.AttachAuto("127.0.0.1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(n.ID()), "127.0.0.1:") {
		t.Errorf("id = %q, want an address", n.ID())
	}
	addr, ok := nw.Route(n.ID())
	if !ok || addr != string(n.ID()) {
		t.Errorf("Route(%s) = %q, %v", n.ID(), addr, ok)
	}
}

func TestAddressFallbackRouting(t *testing.T) {
	// Two separate UDP networks (two "processes"): the server knows
	// nothing about the client, but the client's node id is its socket
	// address, so the server can reply and even initiate sends.
	serverNet := NewUDP()
	defer serverNet.Close()
	clientNet := NewUDP()
	defer clientNet.Close()

	got := make(chan msg.NodeID, 1)
	srv, err := serverNet.Attach("server", func(_ context.Context, from msg.NodeID, m msg.Message) (msg.Message, error) {
		if _, ok := m.(msg.UpdateReq); ok {
			got <- from
			return msg.UpdateRes{OfferedAcc: 7}, nil
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	cl, err := clientNet.AttachAuto("127.0.0.1", func(_ context.Context, _ msg.NodeID, m msg.Message) (msg.Message, error) {
		if _, ok := m.(msg.RequestUpdate); ok {
			return msg.Ack{}, nil
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The client learns the server's address from its own directory.
	serverAddr, _ := serverNet.Route("server")
	if err := clientNet.AddRoute("server", serverAddr); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := cl.Call(ctx, "server", msg.UpdateReq{})
	if err != nil {
		t.Fatalf("client call: %v", err)
	}
	if res, ok := resp.(msg.UpdateRes); !ok || res.OfferedAcc != 7 {
		t.Errorf("resp = %#v", resp)
	}

	var clientID msg.NodeID
	select {
	case clientID = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("server never received the call")
	}

	// Server-initiated send to a node it has no static route for: the
	// address-valued id is enough.
	resp, err = srv.Call(ctx, clientID, msg.RequestUpdate{})
	if err != nil {
		t.Fatalf("server call to client: %v", err)
	}
	if _, ok := resp.(msg.Ack); !ok {
		t.Errorf("resp = %#v", resp)
	}
}

func TestAddressFallbackRejectsNonAddresses(t *testing.T) {
	nw := NewUDP()
	defer nw.Close()
	n, err := nw.Attach("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send("definitely-not-an-address", msg.Ack{}); err != ErrUnknownNode {
		t.Errorf("err = %v, want ErrUnknownNode", err)
	}
}
