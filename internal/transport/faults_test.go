package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/msg"
)

// valueEchoHandler answers ChangeAccReq{DesAcc: x} with ChangeAccRes{OfferedAcc:
// x}: the reply carries its request's value, so correlation mistakes are
// visible as value mismatches, not just as errors.
func valueEchoHandler(_ context.Context, _ msg.NodeID, m msg.Message) (msg.Message, error) {
	req, ok := m.(msg.ChangeAccReq)
	if !ok {
		return msg.Ack{}, nil
	}
	return msg.ChangeAccRes{OK: true, OfferedAcc: req.DesAcc}, nil
}

// waitQuiesced polls until the node's in-flight table is empty, failing
// the test after two seconds — the leak check every fault test ends with.
func waitQuiesced(t *testing.T, nd Node) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if nd.PendingCalls() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("in-flight table not empty at quiesce: %d entries leaked", nd.PendingCalls())
}

// TestLateReplyAfterTimeoutDropped pins the tracker's central safety
// property: a reply that arrives after its call timed out is dropped, not
// crossed onto the next call. The fault plan delays the first call's reply
// past the deadline; the second call must receive its own echoed value.
func TestLateReplyAfterTimeoutDropped(t *testing.T) {
	var delayed atomic.Bool
	net := NewInproc(InprocOptions{
		SweepInterval: 5 * time.Millisecond,
		FaultPlan: func(_, _ msg.NodeID, env msg.Envelope) Fault {
			if env.Reply && env.CorrID == 1 && delayed.CompareAndSwap(false, true) {
				return Fault{Delay: 150 * time.Millisecond}
			}
			return Fault{}
		},
	})
	defer net.Close()
	if _, err := net.Attach("srv", valueEchoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", valueEchoHandler)
	if err != nil {
		t.Fatal(err)
	}

	ctx1, cancel1 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel1()
	_, err = cli.Call(ctx1, "srv", msg.ChangeAccReq{OID: "o", DesAcc: 111})
	if err == nil {
		t.Fatal("delayed-reply call succeeded, want timeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout error = %v, want DeadlineExceeded in chain", err)
	}

	// The late reply (CorrID 1) is still in flight. The next call must
	// get its own reply, id-exact, even though the late one arrives in
	// the same window.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	resp, err := cli.Call(ctx2, "srv", msg.ChangeAccReq{OID: "o", DesAcc: 222})
	if err != nil {
		t.Fatalf("second call: %v", err)
	}
	res, ok := resp.(msg.ChangeAccRes)
	if !ok || res.OfferedAcc != 222 {
		t.Fatalf("second call got %#v, want its own echo 222 (late reply crossed?)", resp)
	}

	// Let the late reply land; it must be dropped without a trace in the
	// in-flight table.
	time.Sleep(200 * time.Millisecond)
	waitQuiesced(t, cli)
}

// TestDuplicateRepliesResolveOnce pins exactly-once resolution: a
// duplicated reply resolves its call a single time, and the extra copy is
// dropped as late rather than resolving a neighbor.
func TestDuplicateRepliesResolveOnce(t *testing.T) {
	net := NewInproc(InprocOptions{
		FaultPlan: func(_, _ msg.NodeID, env msg.Envelope) Fault {
			if env.Reply {
				return Fault{Duplicate: 2} // every reply arrives three times
			}
			return Fault{}
		},
	})
	defer net.Close()
	if _, err := net.Attach("srv", valueEchoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", valueEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 16; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		resp, err := cli.Call(ctx, "srv", msg.ChangeAccReq{OID: "o", DesAcc: float64(i)})
		cancel()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if res, ok := resp.(msg.ChangeAccRes); !ok || res.OfferedAcc != float64(i) {
			t.Fatalf("call %d resolved with %#v (duplicate crossed?)", i, resp)
		}
	}
	time.Sleep(50 * time.Millisecond) // let duplicate copies land
	waitQuiesced(t, cli)
}

// TestOutOfOrderCorrelationIDExact issues a fan of concurrent requests
// whose replies are forced to arrive in reverse order: every pending call
// must still resolve with exactly its own echoed value.
func TestOutOfOrderCorrelationIDExact(t *testing.T) {
	const fan = 8
	net := NewInproc(InprocOptions{
		FaultPlan: func(_, _ msg.NodeID, env msg.Envelope) Fault {
			if env.Reply {
				// Higher CorrIDs get shorter delays: reply order is the
				// reverse of request order.
				return Fault{Delay: time.Duration(fan-int(env.CorrID)) * 10 * time.Millisecond}
			}
			return Fault{}
		},
	})
	defer net.Close()
	if _, err := net.Attach("srv", valueEchoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", valueEchoHandler)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	pending := make([]*PendingCall, 0, fan)
	for i := 1; i <= fan; i++ {
		p, err := cli.CallAsync(ctx, "srv", msg.ChangeAccReq{OID: "o", DesAcc: float64(i)})
		if err != nil {
			t.Fatalf("issuing call %d: %v", i, err)
		}
		if p.ID() != uint64(i) {
			t.Fatalf("call %d got correlation id %d", i, p.ID())
		}
		pending = append(pending, p)
	}
	for i, p := range pending {
		resp, err := p.Wait(ctx)
		if err != nil {
			t.Fatalf("call %d: %v", i+1, err)
		}
		res, ok := resp.(msg.ChangeAccRes)
		if !ok || res.OfferedAcc != float64(i+1) {
			t.Fatalf("call %d resolved with %#v, want echo %d", i+1, resp, i+1)
		}
	}
	waitQuiesced(t, cli)
}

// TestSweeperResolvesAsTimeoutFrame pins the timeout-as-error-frame
// contract: a call whose reply never comes resolves via the sweeper with
// an error that is both core.ErrTimeout and context.DeadlineExceeded to
// errors.Is, leaving no in-flight entry behind.
func TestSweeperResolvesAsTimeoutFrame(t *testing.T) {
	net := NewInproc(InprocOptions{
		CallTimeout:   30 * time.Millisecond,
		SweepInterval: 5 * time.Millisecond,
		FaultPlan: func(_, _ msg.NodeID, env msg.Envelope) Fault {
			return Fault{Drop: env.Reply} // lose every reply
		},
	})
	defer net.Close()
	if _, err := net.Attach("srv", valueEchoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", valueEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cli.CallAsync(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, werr := p.Wait(context.Background())
	if werr == nil {
		t.Fatal("call with dropped reply succeeded")
	}
	if !errors.Is(werr, core.ErrTimeout) {
		t.Fatalf("error = %v, want core.ErrTimeout in chain", werr)
	}
	if !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded in chain", werr)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("sweeper took %v to resolve a 30ms deadline", elapsed)
	}
	waitQuiesced(t, cli)
}

// TestInFlightCapBackpressure pins the bounded in-flight table: with the
// cap saturated, the next CallAsync blocks until a slot frees (here: until
// its context expires), instead of growing the table without bound.
func TestInFlightCapBackpressure(t *testing.T) {
	release := make(chan struct{})
	slow := func(_ context.Context, _ msg.NodeID, m msg.Message) (msg.Message, error) {
		<-release
		return msg.Ack{}, nil
	}
	net := NewInproc(InprocOptions{MaxInFlight: 4})
	defer net.Close()
	if _, err := net.Attach("srv", slow); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Attach("cli", valueEchoHandler)
	if err != nil {
		t.Fatal(err)
	}

	pending := make([]*PendingCall, 0, 4)
	for i := 0; i < 4; i++ {
		p, err := cli.CallAsync(context.Background(), "srv", msg.ChangeAccReq{OID: "o", DesAcc: float64(i)})
		if err != nil {
			t.Fatalf("filling cap, call %d: %v", i, err)
		}
		pending = append(pending, p)
	}
	if got := cli.PendingCalls(); got != 4 {
		t.Fatalf("PendingCalls = %d, want 4", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cli.CallAsync(ctx, "srv", msg.ChangeAccReq{OID: "o", DesAcc: 99}); err == nil {
		t.Fatal("call beyond the in-flight cap was admitted")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("over-cap error = %v, want DeadlineExceeded", err)
	}

	close(release)
	wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer wcancel()
	for i, p := range pending {
		if _, err := p.Wait(wctx); err != nil {
			t.Fatalf("released call %d: %v", i, err)
		}
	}
	// A slot is free again: the next call is admitted immediately.
	resp, err := cli.Call(wctx, "srv", msg.ChangeAccReq{OID: "o", DesAcc: 7})
	if err != nil {
		t.Fatalf("post-release call: %v", err)
	}
	if _, ok := resp.(msg.Ack); !ok {
		t.Fatalf("post-release call got %#v", resp)
	}
	waitQuiesced(t, cli)
}

// TestSeededFaultsDeterministic pins the seeded knobs' reproducibility:
// two networks with the same seed and rates deliver exactly the same
// number of messages from the same sequential send schedule.
func TestSeededFaultsDeterministic(t *testing.T) {
	run := func(seed int64) int64 {
		var delivered atomic.Int64
		net := NewInproc(InprocOptions{
			Seed:        seed,
			DropRate:    0.2,
			DupRate:     0.15,
			ReorderRate: 0.1,
			DelayJitter: 100 * time.Microsecond,
			OnDeliver:   func(_, _ msg.NodeID, _ msg.Message) { delivered.Add(1) },
		})
		sink := func(_ context.Context, _ msg.NodeID, _ msg.Message) (msg.Message, error) { return nil, nil }
		if _, err := net.Attach("dst", sink); err != nil {
			t.Fatal(err)
		}
		src, err := net.Attach("src", sink)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if err := src.Send("dst", msg.NotifyAvailAcc{OID: "o", OfferedAcc: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		net.Close() // waits for in-flight deliveries, including held/delayed ones
		return delivered.Load()
	}
	a1, a2, b := run(42), run(42), run(43)
	if a1 != a2 {
		t.Fatalf("same seed delivered %d then %d messages", a1, a2)
	}
	if a1 == 0 || a1 == 500 {
		t.Fatalf("faults had no visible effect: delivered %d/500", a1)
	}
	if b == a1 {
		t.Logf("different seeds delivered the same count %d (possible, but suspicious)", b)
	}
}
