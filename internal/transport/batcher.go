package transport

import (
	"net"
	"sync"
	"time"

	"locsvc/internal/msg"
	"locsvc/internal/wire"
)

// defaultBatchLinger bounds how long a lone envelope waits for company
// before its batch is flushed anyway. Small enough to be invisible next to
// even a LAN round trip, large enough for a burst of updates to coalesce.
const defaultBatchLinger = time.Millisecond

// batcher is the size-aware outbound coalescer of a UDP node: envelopes
// headed for the same destination are folded into one batch frame (one
// datagram), flushed when the batch would exceed maxDatagram, when it
// reaches the count cap, or when the linger timer fires. The wire format
// lives in wire.BatchBuilder; the batcher only holds flush policy.
type batcher struct {
	nd     *udpNode
	max    int // count cap, ≥ 2
	linger time.Duration

	mu      sync.Mutex
	pending map[msg.NodeID]*pendingBatch
	closed  bool
}

// pendingBatch is the open batch for one destination. Its timer fires the
// linger flush; identity (pointer equality) guards against flushing a
// successor batch for the same destination.
type pendingBatch struct {
	bb    wire.BatchBuilder
	addr  *net.UDPAddr
	timer *time.Timer
}

func newBatcher(nd *udpNode, max int, linger time.Duration) *batcher {
	if linger <= 0 {
		linger = defaultBatchLinger
	}
	return &batcher{nd: nd, max: max, linger: linger, pending: make(map[msg.NodeID]*pendingBatch)}
}

// add enqueues one encoded envelope frame for dst. The frame is copied, so
// the caller may recycle its buffer immediately. Flushes triggered by the
// size or count caps run after the lock is released.
func (b *batcher) add(dst msg.NodeID, addr *net.UDPAddr, frame []byte) {
	var flush []*pendingBatch
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.nd.transmit(addr, frame, 1)
		return
	}
	pb := b.pending[dst]
	if pb == nil {
		pb = &pendingBatch{addr: addr}
		b.pending[dst] = pb
	}
	if pb.bb.Count() > 0 && pb.bb.SizeWith(len(frame)) > maxDatagram {
		flush = append(flush, b.detachLocked(dst, pb))
		pb = &pendingBatch{addr: addr}
		b.pending[dst] = pb
	}
	pb.bb.Add(frame)
	switch {
	case pb.bb.Count() >= b.max:
		flush = append(flush, b.detachLocked(dst, pb))
	case pb.bb.Count() == 1:
		pb.timer = time.AfterFunc(b.linger, func() { b.lingerFlush(dst, pb) })
	}
	b.mu.Unlock()
	for _, pb := range flush {
		b.send(pb)
	}
}

// detachLocked removes pb from the pending table and disarms its timer.
// Callers hold b.mu.
func (b *batcher) detachLocked(dst msg.NodeID, pb *pendingBatch) *pendingBatch {
	if b.pending[dst] == pb {
		delete(b.pending, dst)
	}
	if pb.timer != nil {
		pb.timer.Stop()
	}
	return pb
}

// lingerFlush is the timer callback. The identity check makes it a no-op
// when pb was already flushed (and possibly replaced) by a cap.
func (b *batcher) lingerFlush(dst msg.NodeID, pb *pendingBatch) {
	b.mu.Lock()
	if b.pending[dst] != pb {
		b.mu.Unlock()
		return
	}
	delete(b.pending, dst)
	b.mu.Unlock()
	b.send(pb)
}

// send assembles pb into one datagram and transmits it.
func (b *batcher) send(pb *pendingBatch) {
	n := pb.bb.Count()
	if n == 0 {
		return
	}
	bp := wire.GetBuffer()
	data := pb.bb.AppendTo((*bp)[:0])
	*bp = data
	b.nd.transmit(pb.addr, data, n)
	wire.PutBuffer(bp)
}

// closeFlush flushes every open batch and routes subsequent adds straight
// to the socket. Called when the node detaches.
func (b *batcher) closeFlush() {
	b.mu.Lock()
	b.closed = true
	rest := make([]*pendingBatch, 0, len(b.pending))
	for dst, pb := range b.pending {
		rest = append(rest, b.detachLocked(dst, pb))
	}
	b.mu.Unlock()
	for _, pb := range rest {
		b.send(pb)
	}
}
