package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"locsvc/internal/metrics"
	"locsvc/internal/msg"
	"locsvc/internal/wire"
)

// maxDatagram bounds encoded envelope size: the largest payload a UDP
// datagram can physically carry (65,535-byte 16-bit length field minus
// the 8-byte UDP and 20-byte IP headers). Anything larger fails at encode
// time with the message type and encoded size — the kernel would only
// ever answer EMSGSIZE. Room for ~1,600 range-query entries per
// datagram; the paper's prototype likewise ran over a LAN with large UDP
// datagrams.
const maxDatagram = 65507

// UDPOptions configure a UDP network.
type UDPOptions struct {
	// Metrics receives the network's wire-level counters; nil gets a
	// private registry (see NewUDPWithMetrics).
	Metrics *metrics.Registry
	// BatchMax ≥ 2 enables outbound batching with that many envelopes per
	// datagram at most; 0 or 1 sends one envelope per datagram (the
	// compatible default — a batch of one is a legacy frame anyway).
	BatchMax int
	// BatchLinger bounds how long a lone envelope waits to be coalesced;
	// zero uses a small default (defaultBatchLinger). Only meaningful
	// with BatchMax ≥ 2.
	BatchLinger time.Duration
	// CallTimeout caps every Call/CallAsync deadline: the effective
	// deadline is the earlier of the context's and now+CallTimeout.
	// Zero means calls expire only on their own context's deadline
	// (pre-tracker behavior).
	CallTimeout time.Duration
	// SweepInterval is the timeout goroutine's scan cadence; zero uses
	// defaultSweepInterval.
	SweepInterval time.Duration
	// MaxInFlight caps outstanding calls per node for backpressure; zero
	// is unbounded.
	MaxInFlight int
	// BreakerThreshold enables per-peer circuit breakers: after that many
	// consecutive swept timeouts toward one destination, calls to it fail
	// fast with ErrBreakerOpen — no socket write, no in-flight slot —
	// until BreakerCooldown elapses and a probe call succeeds. Zero
	// disables breakers.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open probe interval; zero uses
	// defaultBreakerCooldown.
	BreakerCooldown time.Duration
}

// UDP is a datagram Network. Node addresses are resolved through a static
// Directory (the deployment knows every server's address; clients and
// objects register themselves when attaching). It mirrors the paper's
// prototype, whose communication protocols are implemented on top of UDP.
//
// The hot path is allocation-lean: receive buffers are pooled and handed
// back as soon as the binary codec has decoded out of them (decoded
// envelopes share no memory with the datagram), and sends encode into
// pooled buffers with the size guard applied before the socket write.
// With BatchMax ≥ 2 outbound envelopes per destination are coalesced into
// batch frames (see the batcher); receive is always batch-aware, so a
// non-batching network interoperates with a batching peer.
type UDP struct {
	opts UDPOptions

	mu     sync.RWMutex
	dir    map[msg.NodeID]*net.UDPAddr
	nodes  map[msg.NodeID]*udpNode
	closed bool
	wg     sync.WaitGroup

	// recvBufs recycles maxDatagram-sized receive buffers across all of
	// the network's read loops.
	recvBufs sync.Pool

	// lossMu guards the injected receive-loss state (tests only).
	lossMu   sync.Mutex
	lossRate float64
	lossRng  *rand.Rand

	// met and the resolved counters below record wire-level traffic.
	// The registry is shared with the co-located server in lsd, so the
	// counters surface through DiagRes and lsctl stats.
	met          *metrics.Registry
	bytesIn      *metrics.Counter
	bytesOut     *metrics.Counter
	datagramsIn  *metrics.Counter
	datagramsOut *metrics.Counter
	decodeErrors *metrics.Counter
	oversize     *metrics.Counter
	batchesIn    *metrics.Counter
	batchesOut   *metrics.Counter
	envelopesIn  *metrics.Counter
	envelopesOut *metrics.Counter
	envsPerBatch *metrics.Histogram
	callTimeouts *metrics.Counter
	lateReplies  *metrics.Counter
	lossInjected *metrics.Counter
	retries      *metrics.Counter
}

var _ Network = (*UDP)(nil)

// NewUDP creates a UDP network with an initially empty directory and a
// private metrics registry (see NewUDPWithMetrics).
func NewUDP() *UDP {
	return NewUDPWithOptions(UDPOptions{})
}

// NewUDPWithMetrics creates a UDP network whose wire-level counters are
// registered in reg; see NewUDPWithOptions.
func NewUDPWithMetrics(reg *metrics.Registry) *UDP {
	return NewUDPWithOptions(UDPOptions{Metrics: reg})
}

// NewUDPWithOptions creates a UDP network. Its wire-level instruments —
// wire_bytes_in/out, wire_datagrams_in/out, wire_decode_errors,
// wire_oversize_dropped, wire_batches_in/out, wire_envelopes_in/out, the
// wire_envelopes_per_batch histogram, wire_call_timeouts and
// wire_late_replies — are registered in opts.Metrics. A process that runs
// one server per network (lsd, the paper's deployment shape) passes the
// server's registry so the counters ride along in diagnostic snapshots. A
// nil registry gets a private one, retrievable via Metrics.
func NewUDPWithOptions(opts UDPOptions) *UDP {
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	u := &UDP{
		opts:         opts,
		dir:          make(map[msg.NodeID]*net.UDPAddr),
		nodes:        make(map[msg.NodeID]*udpNode),
		met:          reg,
		bytesIn:      reg.Counter("wire_bytes_in"),
		bytesOut:     reg.Counter("wire_bytes_out"),
		datagramsIn:  reg.Counter("wire_datagrams_in"),
		datagramsOut: reg.Counter("wire_datagrams_out"),
		decodeErrors: reg.Counter("wire_decode_errors"),
		oversize:     reg.Counter("wire_oversize_dropped"),
		batchesIn:    reg.Counter("wire_batches_in"),
		batchesOut:   reg.Counter("wire_batches_out"),
		envelopesIn:  reg.Counter("wire_envelopes_in"),
		envelopesOut: reg.Counter("wire_envelopes_out"),
		envsPerBatch: reg.Histogram("wire_envelopes_per_batch"),
		callTimeouts: reg.Counter("wire_call_timeouts"),
		lateReplies:  reg.Counter("wire_late_replies"),
		lossInjected: reg.Counter("wire_loss_injected"),
		retries:      reg.Counter("wire_retries"),
	}
	u.recvBufs.New = func() any {
		b := make([]byte, maxDatagram)
		return &b
	}
	return u
}

// Metrics returns the registry holding the network's wire-level counters.
func (u *UDP) Metrics() *metrics.Registry { return u.met }

// SetLoss injects seeded random receive loss: each incoming datagram is
// dropped with probability rate, after the datagram counters but before
// decoding — as if the kernel had lost it. Fault-injection soaks use it
// to exercise the tracker's timeout path against a real socket.
func (u *UDP) SetLoss(rate float64, seed int64) {
	u.lossMu.Lock()
	defer u.lossMu.Unlock()
	u.lossRate = rate
	u.lossRng = rand.New(rand.NewSource(seed))
}

// dropIncoming draws one injected-loss decision.
func (u *UDP) dropIncoming() bool {
	u.lossMu.Lock()
	defer u.lossMu.Unlock()
	if u.lossRate <= 0 || u.lossRng == nil {
		return false
	}
	return u.lossRng.Float64() < u.lossRate
}

// AddRoute maps a node id to a UDP address ("host:port"). Servers started
// by cmd/lsd publish their addresses through the deployment config.
func (u *UDP) AddRoute(id msg.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolving %s: %w", addr, err)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.dir[id] = ua
	return nil
}

// Route returns the address registered for id.
func (u *UDP) Route(id msg.NodeID) (string, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	ua, ok := u.dir[id]
	if !ok {
		return "", false
	}
	return ua.String(), true
}

// newNode builds a node with its tracker and (if configured) batcher.
func (u *UDP) newNode(id msg.NodeID, conn *net.UDPConn, h Handler) *udpNode {
	nd := &udpNode{id: id, net: u, conn: conn, handler: h}
	nd.health = newHealth(breakerConfig{
		threshold: u.opts.BreakerThreshold,
		cooldown:  u.opts.BreakerCooldown,
		owner:     id,
		metrics:   u.met,
	})
	tc := trackerConfig{
		maxInFlight: u.opts.MaxInFlight,
		sweepEvery:  u.opts.SweepInterval,
		onTimeout:   u.callTimeouts.Inc,
		onLate:      u.lateReplies.Inc,
	}
	if nd.health != nil {
		tc.onOutcome = nd.health.outcome
	}
	nd.calls = newCalls(tc)
	if u.opts.BatchMax >= 2 {
		nd.batch = newBatcher(nd, u.opts.BatchMax, u.opts.BatchLinger)
	}
	return nd
}

// Attach implements Network, binding a fresh socket on 127.0.0.1. The
// chosen address is added to the directory automatically.
func (u *UDP) Attach(id msg.NodeID, h Handler) (Node, error) {
	return u.AttachAddr(id, "127.0.0.1:0", h)
}

// AttachAuto binds a socket on an ephemeral port of host and attaches the
// node under its own address as node id ("127.0.0.1:54321"). Clients of a
// UDP deployment attach this way: every server can then reach them via the
// address-fallback routing in write without any directory distribution.
func (u *UDP) AttachAuto(host string, h Handler) (Node, error) {
	la, err := net.ResolveUDPAddr("udp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: resolving %s: %w", host, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("transport: binding %s: %w", host, err)
	}
	id := msg.NodeID(conn.LocalAddr().String())
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if _, ok := u.nodes[id]; ok {
		conn.Close()
		return nil, ErrDuplicateID
	}
	node := u.newNode(id, conn, h)
	u.nodes[id] = node
	u.dir[id] = conn.LocalAddr().(*net.UDPAddr)
	u.wg.Add(1)
	go node.readLoop(&u.wg)
	return node, nil
}

// AttachAddr binds the node's socket to a specific address.
func (u *UDP) AttachAddr(id msg.NodeID, bind string, h Handler) (Node, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return nil, ErrClosed
	}
	if _, ok := u.nodes[id]; ok {
		return nil, ErrDuplicateID
	}
	la, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving bind %s: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("transport: binding %s: %w", bind, err)
	}
	node := u.newNode(id, conn, h)
	u.nodes[id] = node
	u.dir[id] = conn.LocalAddr().(*net.UDPAddr)
	u.wg.Add(1)
	go node.readLoop(&u.wg)
	return node, nil
}

// Close implements Network.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	nodes := make([]*udpNode, 0, len(u.nodes))
	for _, n := range u.nodes {
		nodes = append(nodes, n)
	}
	u.mu.Unlock()
	for _, n := range nodes {
		n.calls.close()
		if n.batch != nil {
			n.batch.closeFlush()
		}
		n.conn.Close()
	}
	u.wg.Wait()
	return nil
}

type udpNode struct {
	id      msg.NodeID
	net     *UDP
	conn    *net.UDPConn
	handler Handler
	calls   *calls
	health  *health
	batch   *batcher // nil when batching is off

	handlerWG sync.WaitGroup
}

var _ Node = (*udpNode)(nil)

// ID implements Node.
func (nd *udpNode) ID() msg.NodeID { return nd.id }

// readLoop receives datagrams until the socket closes. Each datagram is
// read into a pooled buffer that goes straight through the batch-aware
// decode and back to the pool — the decoded envelopes own copies of
// everything they need, so no per-packet allocation or copy survives the
// loop body.
func (nd *udpNode) readLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		bp := nd.net.recvBufs.Get().(*[]byte)
		buf := *bp
		// ReadFromUDPAddrPort returns the source as a value type, so the
		// steady-state loop body is allocation-free; ReadFromUDP would
		// heap-allocate a *net.UDPAddr per packet.
		n, src, err := nd.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			nd.net.recvBufs.Put(bp)
			if errors.Is(err, net.ErrClosed) {
				nd.handlerWG.Wait()
				return
			}
			continue
		}
		nd.net.datagramsIn.Inc()
		nd.net.bytesIn.Add(int64(n))
		if nd.net.dropIncoming() {
			nd.net.recvBufs.Put(bp)
			nd.net.lossInjected.Inc()
			continue
		}
		// The single-envelope fast path avoids DecodeBatch's slice
		// allocation; batch frames take the slice once per datagram, not
		// per envelope.
		if wire.IsBatch(buf[:n]) {
			envs, derr := wire.DecodeBatch(buf[:n])
			nd.net.recvBufs.Put(bp)
			if derr != nil {
				nd.net.decodeErrors.Inc()
				continue
			}
			nd.net.batchesIn.Inc()
			nd.net.envelopesIn.Add(int64(len(envs)))
			for _, env := range envs {
				nd.process(env, src)
			}
			continue
		}
		env, derr := wire.Decode(buf[:n])
		nd.net.recvBufs.Put(bp)
		if derr != nil {
			// Malformed datagram: drop, as UDP services must, but
			// leave a trace for the operator.
			nd.net.decodeErrors.Inc()
			continue
		}
		nd.net.envelopesIn.Inc()
		nd.process(env, src)
	}
}

// process routes one received envelope: reply correlation through the
// tracker, or handler dispatch on its own goroutine.
func (nd *udpNode) process(env msg.Envelope, src netip.AddrPort) {
	// Learn the sender's address so replies and later messages to
	// this node need no static directory entry. Known senders — the
	// steady state — take only the read lock; the exclusive lock and
	// the *net.UDPAddr conversion are paid once per new peer.
	if env.From != "" && src.IsValid() {
		nd.net.mu.RLock()
		_, known := nd.net.dir[env.From]
		nd.net.mu.RUnlock()
		if !known {
			ua := net.UDPAddrFromAddrPort(src)
			nd.net.mu.Lock()
			if _, known := nd.net.dir[env.From]; !known {
				nd.net.dir[env.From] = ua
			}
			nd.net.mu.Unlock()
		}
	}
	if env.Reply {
		nd.calls.deliver(env.CorrID, env.Msg)
		return
	}
	if nd.handler == nil {
		return
	}
	nd.handlerWG.Add(1)
	go func(env msg.Envelope) {
		defer nd.handlerWG.Done()
		resp, herr := nd.handler(context.Background(), env.From, env.Msg)
		if env.CorrID == 0 {
			return
		}
		var payload msg.Message
		switch {
		case herr != nil:
			payload = msg.ErrorResFrom(herr)
		case resp != nil:
			payload = resp
		default:
			payload = msg.Ack{}
		}
		reply := msg.Envelope{From: nd.id, CorrID: env.CorrID, Reply: true, Msg: payload}
		// Best effort: UDP replies may be lost like any datagram.
		_ = nd.write(env.From, reply)
	}(env)
}

// transmit sends one assembled datagram carrying count envelopes and
// records the wire counters. Send errors are best-effort-dropped for
// batched flushes (the batcher has no caller to report to), matching UDP
// loss semantics.
func (nd *udpNode) transmit(addr *net.UDPAddr, data []byte, count int) {
	_, err := nd.conn.WriteToUDP(data, addr)
	if err != nil {
		return
	}
	nd.net.datagramsOut.Inc()
	nd.net.bytesOut.Add(int64(len(data)))
	if count >= 2 {
		nd.net.batchesOut.Inc()
	}
	if nd.batch != nil {
		nd.net.envsPerBatch.Observe(float64(count))
	}
}

// write encodes and transmits an envelope to the directory address of dst.
// Node ids that are not in the directory but parse as "host:port" are sent
// to that address directly: clients of a UDP deployment use their own
// socket address as node id, so servers can answer them without any
// directory entry (the paper's prototype likewise replies to the datagram
// source). Encoding appends into a pooled buffer; an envelope that would
// exceed maxDatagram fails here, before the socket write, with the message
// type and encoded size. With batching enabled the encoded frame is handed
// to the coalescer instead of the socket; it rides the next flushed batch.
func (nd *udpNode) write(dst msg.NodeID, env msg.Envelope) error {
	nd.net.mu.RLock()
	addr, ok := nd.net.dir[dst]
	nd.net.mu.RUnlock()
	if !ok {
		ua, err := net.ResolveUDPAddr("udp", string(dst))
		if err != nil || ua.Port == 0 {
			return ErrUnknownNode
		}
		nd.net.mu.Lock()
		nd.net.dir[dst] = ua
		nd.net.mu.Unlock()
		addr = ua
	}
	bp := wire.GetBuffer()
	data, err := wire.AppendEncode((*bp)[:0], env)
	if err != nil {
		wire.PutBuffer(bp)
		return err
	}
	*bp = data
	if len(data) > maxDatagram {
		nd.net.oversize.Inc()
		tag, _ := msg.TagOf(env.Msg)
		wire.PutBuffer(bp)
		return fmt.Errorf("transport: %s envelope encodes to %d bytes, exceeding the %d-byte datagram limit", tag, len(data), maxDatagram)
	}
	nd.net.envelopesOut.Inc()
	if nd.batch != nil {
		nd.batch.add(dst, addr, data)
		wire.PutBuffer(bp)
		return nil
	}
	_, werr := nd.conn.WriteToUDP(data, addr)
	n := len(data)
	wire.PutBuffer(bp)
	if werr != nil {
		return fmt.Errorf("transport: sending to %s: %w", dst, werr)
	}
	nd.net.datagramsOut.Inc()
	nd.net.bytesOut.Add(int64(n))
	return nil
}

// Send implements Node. An open breaker toward the destination fails
// fast: one-way messages to a dark peer are pure loss anyway.
func (nd *udpNode) Send(to msg.NodeID, m msg.Message) error {
	if nd.health.state(to) == PeerOpen {
		return ErrBreakerOpen
	}
	return nd.write(to, msg.Envelope{From: nd.id, Msg: m})
}

// Call implements Node: CallAsync followed by Wait, the lockstep special
// case of the multiplexed path.
func (nd *udpNode) Call(ctx context.Context, to msg.NodeID, m msg.Message) (msg.Message, error) {
	p, err := nd.CallAsync(ctx, to, m)
	if err != nil {
		return nil, err
	}
	return p.Wait(ctx)
}

// CallAsync implements Node.
func (nd *udpNode) CallAsync(ctx context.Context, to msg.NodeID, m msg.Message) (*PendingCall, error) {
	if err := nd.health.allow(to); err != nil {
		return nil, err
	}
	deadline := callDeadline(ctx, nd.net.opts.CallTimeout)
	id, ch, err := nd.calls.register(ctx, to, deadline)
	if err != nil {
		nd.health.abortProbe(to)
		return nil, err
	}
	if err := nd.write(to, msg.Envelope{From: nd.id, CorrID: id, Msg: m}); err != nil {
		nd.calls.cancel(id)
		nd.health.abortProbe(to)
		return nil, err
	}
	return &PendingCall{c: nd.calls, id: id, ch: ch}, nil
}

// countRetry feeds the network's wire_retries counter (retryCounter).
func (nd *udpNode) countRetry() { nd.net.retries.Inc() }

// PeerState returns this node's breaker state toward to (PeerClosed when
// breakers are disabled).
func (nd *udpNode) PeerState(to msg.NodeID) PeerState { return nd.health.state(to) }

// PendingCalls implements Node.
func (nd *udpNode) PendingCalls() int { return nd.calls.pending() }

// Close implements Node.
func (nd *udpNode) Close() error {
	nd.net.mu.Lock()
	delete(nd.net.nodes, nd.id)
	nd.net.mu.Unlock()
	nd.calls.close()
	if nd.batch != nil {
		nd.batch.closeFlush()
	}
	return nd.conn.Close()
}
