package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"locsvc/internal/msg"
	"locsvc/internal/wire"
)

// maxDatagram bounds encoded envelope size. Range query results for large
// areas can carry thousands of entries, so this is generous; the paper's
// prototype likewise ran over a LAN with large UDP datagrams.
const maxDatagram = 512 * 1024

// UDP is a datagram Network. Node addresses are resolved through a static
// Directory (the deployment knows every server's address; clients and
// objects register themselves when attaching). It mirrors the paper's
// prototype, whose communication protocols are implemented on top of UDP.
type UDP struct {
	mu     sync.RWMutex
	dir    map[msg.NodeID]*net.UDPAddr
	nodes  map[msg.NodeID]*udpNode
	closed bool
	wg     sync.WaitGroup
}

var _ Network = (*UDP)(nil)

// NewUDP creates a UDP network with an initially empty directory.
func NewUDP() *UDP {
	return &UDP{
		dir:   make(map[msg.NodeID]*net.UDPAddr),
		nodes: make(map[msg.NodeID]*udpNode),
	}
}

// AddRoute maps a node id to a UDP address ("host:port"). Servers started
// by cmd/lsd publish their addresses through the deployment config.
func (u *UDP) AddRoute(id msg.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolving %s: %w", addr, err)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.dir[id] = ua
	return nil
}

// Route returns the address registered for id.
func (u *UDP) Route(id msg.NodeID) (string, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	ua, ok := u.dir[id]
	if !ok {
		return "", false
	}
	return ua.String(), true
}

// Attach implements Network, binding a fresh socket on 127.0.0.1. The
// chosen address is added to the directory automatically.
func (u *UDP) Attach(id msg.NodeID, h Handler) (Node, error) {
	return u.AttachAddr(id, "127.0.0.1:0", h)
}

// AttachAuto binds a socket on an ephemeral port of host and attaches the
// node under its own address as node id ("127.0.0.1:54321"). Clients of a
// UDP deployment attach this way: every server can then reach them via the
// address-fallback routing in write without any directory distribution.
func (u *UDP) AttachAuto(host string, h Handler) (Node, error) {
	la, err := net.ResolveUDPAddr("udp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: resolving %s: %w", host, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("transport: binding %s: %w", host, err)
	}
	id := msg.NodeID(conn.LocalAddr().String())
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if _, ok := u.nodes[id]; ok {
		conn.Close()
		return nil, ErrDuplicateID
	}
	node := &udpNode{id: id, net: u, conn: conn, handler: h, calls: newCalls()}
	u.nodes[id] = node
	u.dir[id] = conn.LocalAddr().(*net.UDPAddr)
	u.wg.Add(1)
	go node.readLoop(&u.wg)
	return node, nil
}

// AttachAddr binds the node's socket to a specific address.
func (u *UDP) AttachAddr(id msg.NodeID, bind string, h Handler) (Node, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return nil, ErrClosed
	}
	if _, ok := u.nodes[id]; ok {
		return nil, ErrDuplicateID
	}
	la, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving bind %s: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("transport: binding %s: %w", bind, err)
	}
	node := &udpNode{id: id, net: u, conn: conn, handler: h, calls: newCalls()}
	u.nodes[id] = node
	u.dir[id] = conn.LocalAddr().(*net.UDPAddr)
	u.wg.Add(1)
	go node.readLoop(&u.wg)
	return node, nil
}

// Close implements Network.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	nodes := make([]*udpNode, 0, len(u.nodes))
	for _, n := range u.nodes {
		nodes = append(nodes, n)
	}
	u.mu.Unlock()
	for _, n := range nodes {
		n.conn.Close()
	}
	u.wg.Wait()
	return nil
}

type udpNode struct {
	id      msg.NodeID
	net     *UDP
	conn    *net.UDPConn
	handler Handler
	calls   *calls

	handlerWG sync.WaitGroup
}

var _ Node = (*udpNode)(nil)

// ID implements Node.
func (nd *udpNode) ID() msg.NodeID { return nd.id }

// readLoop receives datagrams until the socket closes.
func (nd *udpNode) readLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, src, err := nd.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				nd.handlerWG.Wait()
				return
			}
			continue
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		env, err := wire.Decode(data)
		if err != nil {
			continue // malformed datagram: drop, as UDP services must
		}
		// Learn the sender's address so replies and later messages to
		// this node need no static directory entry.
		if env.From != "" && src != nil {
			nd.net.mu.Lock()
			if _, known := nd.net.dir[env.From]; !known {
				nd.net.dir[env.From] = src
			}
			nd.net.mu.Unlock()
		}
		if env.Reply {
			nd.calls.deliver(env.CorrID, env.Msg)
			continue
		}
		nd.handlerWG.Add(1)
		go func(env msg.Envelope) {
			defer nd.handlerWG.Done()
			resp, herr := nd.handler(context.Background(), env.From, env.Msg)
			if env.CorrID == 0 {
				return
			}
			var payload msg.Message
			switch {
			case herr != nil:
				payload = msg.ErrorResFrom(herr)
			case resp != nil:
				payload = resp
			default:
				payload = msg.Ack{}
			}
			reply := msg.Envelope{From: nd.id, CorrID: env.CorrID, Reply: true, Msg: payload}
			// Best effort: UDP replies may be lost like any datagram.
			_ = nd.write(env.From, reply)
		}(env)
	}
}

// write encodes and transmits an envelope to the directory address of dst.
// Node ids that are not in the directory but parse as "host:port" are sent
// to that address directly: clients of a UDP deployment use their own
// socket address as node id, so servers can answer them without any
// directory entry (the paper's prototype likewise replies to the datagram
// source).
func (nd *udpNode) write(dst msg.NodeID, env msg.Envelope) error {
	nd.net.mu.RLock()
	addr, ok := nd.net.dir[dst]
	nd.net.mu.RUnlock()
	if !ok {
		ua, err := net.ResolveUDPAddr("udp", string(dst))
		if err != nil || ua.Port == 0 {
			return ErrUnknownNode
		}
		nd.net.mu.Lock()
		nd.net.dir[dst] = ua
		nd.net.mu.Unlock()
		addr = ua
	}
	data, err := wire.Encode(env)
	if err != nil {
		return err
	}
	if len(data) > maxDatagram {
		return fmt.Errorf("transport: envelope of %d bytes exceeds datagram limit", len(data))
	}
	if _, err := nd.conn.WriteToUDP(data, addr); err != nil {
		return fmt.Errorf("transport: sending to %s: %w", dst, err)
	}
	return nil
}

// Send implements Node.
func (nd *udpNode) Send(to msg.NodeID, m msg.Message) error {
	return nd.write(to, msg.Envelope{From: nd.id, Msg: m})
}

// Call implements Node.
func (nd *udpNode) Call(ctx context.Context, to msg.NodeID, m msg.Message) (msg.Message, error) {
	corr, ch := nd.calls.register()
	if err := nd.write(to, msg.Envelope{From: nd.id, CorrID: corr, Msg: m}); err != nil {
		nd.calls.cancel(corr)
		return nil, err
	}
	return nd.calls.await(ctx, corr, ch)
}

// Close implements Node.
func (nd *udpNode) Close() error {
	nd.net.mu.Lock()
	delete(nd.net.nodes, nd.id)
	nd.net.mu.Unlock()
	return nd.conn.Close()
}
