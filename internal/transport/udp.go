package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"locsvc/internal/metrics"
	"locsvc/internal/msg"
	"locsvc/internal/wire"
)

// maxDatagram bounds encoded envelope size: the largest payload a UDP
// datagram can physically carry (65,535-byte 16-bit length field minus
// the 8-byte UDP and 20-byte IP headers). Anything larger fails at encode
// time with the message type and encoded size — the kernel would only
// ever answer EMSGSIZE. Room for ~1,600 range-query entries per
// datagram; the paper's prototype likewise ran over a LAN with large UDP
// datagrams.
const maxDatagram = 65507

// UDP is a datagram Network. Node addresses are resolved through a static
// Directory (the deployment knows every server's address; clients and
// objects register themselves when attaching). It mirrors the paper's
// prototype, whose communication protocols are implemented on top of UDP.
//
// The hot path is allocation-lean: receive buffers are pooled and handed
// back as soon as the binary codec has decoded out of them (decoded
// envelopes share no memory with the datagram), and sends encode into
// pooled buffers with the size guard applied before the socket write.
type UDP struct {
	mu     sync.RWMutex
	dir    map[msg.NodeID]*net.UDPAddr
	nodes  map[msg.NodeID]*udpNode
	closed bool
	wg     sync.WaitGroup

	// recvBufs recycles maxDatagram-sized receive buffers across all of
	// the network's read loops.
	recvBufs sync.Pool

	// met and the resolved counters below record wire-level traffic.
	// The registry is shared with the co-located server in lsd, so the
	// counters surface through DiagRes and lsctl stats.
	met          *metrics.Registry
	bytesIn      *metrics.Counter
	bytesOut     *metrics.Counter
	datagramsIn  *metrics.Counter
	datagramsOut *metrics.Counter
	decodeErrors *metrics.Counter
	oversize     *metrics.Counter
}

var _ Network = (*UDP)(nil)

// NewUDP creates a UDP network with an initially empty directory and a
// private metrics registry (see NewUDPWithMetrics).
func NewUDP() *UDP {
	return NewUDPWithMetrics(nil)
}

// NewUDPWithMetrics creates a UDP network whose wire-level counters —
// wire_bytes_in, wire_bytes_out, wire_datagrams_in, wire_datagrams_out,
// wire_decode_errors, wire_oversize_dropped — are registered in reg. A
// process that runs one server per network (lsd, the paper's deployment
// shape) passes the server's registry so the counters ride along in
// diagnostic snapshots. A nil reg gets a private registry, retrievable
// via Metrics.
func NewUDPWithMetrics(reg *metrics.Registry) *UDP {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	u := &UDP{
		dir:          make(map[msg.NodeID]*net.UDPAddr),
		nodes:        make(map[msg.NodeID]*udpNode),
		met:          reg,
		bytesIn:      reg.Counter("wire_bytes_in"),
		bytesOut:     reg.Counter("wire_bytes_out"),
		datagramsIn:  reg.Counter("wire_datagrams_in"),
		datagramsOut: reg.Counter("wire_datagrams_out"),
		decodeErrors: reg.Counter("wire_decode_errors"),
		oversize:     reg.Counter("wire_oversize_dropped"),
	}
	u.recvBufs.New = func() any {
		b := make([]byte, maxDatagram)
		return &b
	}
	return u
}

// Metrics returns the registry holding the network's wire-level counters.
func (u *UDP) Metrics() *metrics.Registry { return u.met }

// AddRoute maps a node id to a UDP address ("host:port"). Servers started
// by cmd/lsd publish their addresses through the deployment config.
func (u *UDP) AddRoute(id msg.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolving %s: %w", addr, err)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.dir[id] = ua
	return nil
}

// Route returns the address registered for id.
func (u *UDP) Route(id msg.NodeID) (string, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	ua, ok := u.dir[id]
	if !ok {
		return "", false
	}
	return ua.String(), true
}

// Attach implements Network, binding a fresh socket on 127.0.0.1. The
// chosen address is added to the directory automatically.
func (u *UDP) Attach(id msg.NodeID, h Handler) (Node, error) {
	return u.AttachAddr(id, "127.0.0.1:0", h)
}

// AttachAuto binds a socket on an ephemeral port of host and attaches the
// node under its own address as node id ("127.0.0.1:54321"). Clients of a
// UDP deployment attach this way: every server can then reach them via the
// address-fallback routing in write without any directory distribution.
func (u *UDP) AttachAuto(host string, h Handler) (Node, error) {
	la, err := net.ResolveUDPAddr("udp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: resolving %s: %w", host, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("transport: binding %s: %w", host, err)
	}
	id := msg.NodeID(conn.LocalAddr().String())
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if _, ok := u.nodes[id]; ok {
		conn.Close()
		return nil, ErrDuplicateID
	}
	node := &udpNode{id: id, net: u, conn: conn, handler: h, calls: newCalls()}
	u.nodes[id] = node
	u.dir[id] = conn.LocalAddr().(*net.UDPAddr)
	u.wg.Add(1)
	go node.readLoop(&u.wg)
	return node, nil
}

// AttachAddr binds the node's socket to a specific address.
func (u *UDP) AttachAddr(id msg.NodeID, bind string, h Handler) (Node, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return nil, ErrClosed
	}
	if _, ok := u.nodes[id]; ok {
		return nil, ErrDuplicateID
	}
	la, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving bind %s: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("transport: binding %s: %w", bind, err)
	}
	node := &udpNode{id: id, net: u, conn: conn, handler: h, calls: newCalls()}
	u.nodes[id] = node
	u.dir[id] = conn.LocalAddr().(*net.UDPAddr)
	u.wg.Add(1)
	go node.readLoop(&u.wg)
	return node, nil
}

// Close implements Network.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	nodes := make([]*udpNode, 0, len(u.nodes))
	for _, n := range u.nodes {
		nodes = append(nodes, n)
	}
	u.mu.Unlock()
	for _, n := range nodes {
		n.conn.Close()
	}
	u.wg.Wait()
	return nil
}

type udpNode struct {
	id      msg.NodeID
	net     *UDP
	conn    *net.UDPConn
	handler Handler
	calls   *calls

	handlerWG sync.WaitGroup
}

var _ Node = (*udpNode)(nil)

// ID implements Node.
func (nd *udpNode) ID() msg.NodeID { return nd.id }

// readLoop receives datagrams until the socket closes. Each datagram is
// read into a pooled buffer that goes straight through wire.Decode and
// back to the pool — the decoded envelope owns copies of everything it
// needs, so no per-packet allocation or copy survives the loop body.
func (nd *udpNode) readLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		bp := nd.net.recvBufs.Get().(*[]byte)
		buf := *bp
		// ReadFromUDPAddrPort returns the source as a value type, so the
		// steady-state loop body is allocation-free; ReadFromUDP would
		// heap-allocate a *net.UDPAddr per packet.
		n, src, err := nd.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			nd.net.recvBufs.Put(bp)
			if errors.Is(err, net.ErrClosed) {
				nd.handlerWG.Wait()
				return
			}
			continue
		}
		env, derr := wire.Decode(buf[:n])
		nd.net.recvBufs.Put(bp)
		nd.net.datagramsIn.Inc()
		nd.net.bytesIn.Add(int64(n))
		if derr != nil {
			// Malformed datagram: drop, as UDP services must, but
			// leave a trace for the operator.
			nd.net.decodeErrors.Inc()
			continue
		}
		// Learn the sender's address so replies and later messages to
		// this node need no static directory entry. Known senders — the
		// steady state — take only the read lock; the exclusive lock and
		// the *net.UDPAddr conversion are paid once per new peer.
		if env.From != "" && src.IsValid() {
			nd.net.mu.RLock()
			_, known := nd.net.dir[env.From]
			nd.net.mu.RUnlock()
			if !known {
				ua := net.UDPAddrFromAddrPort(src)
				nd.net.mu.Lock()
				if _, known := nd.net.dir[env.From]; !known {
					nd.net.dir[env.From] = ua
				}
				nd.net.mu.Unlock()
			}
		}
		if env.Reply {
			nd.calls.deliver(env.CorrID, env.Msg)
			continue
		}
		nd.handlerWG.Add(1)
		go func(env msg.Envelope) {
			defer nd.handlerWG.Done()
			resp, herr := nd.handler(context.Background(), env.From, env.Msg)
			if env.CorrID == 0 {
				return
			}
			var payload msg.Message
			switch {
			case herr != nil:
				payload = msg.ErrorResFrom(herr)
			case resp != nil:
				payload = resp
			default:
				payload = msg.Ack{}
			}
			reply := msg.Envelope{From: nd.id, CorrID: env.CorrID, Reply: true, Msg: payload}
			// Best effort: UDP replies may be lost like any datagram.
			_ = nd.write(env.From, reply)
		}(env)
	}
}

// write encodes and transmits an envelope to the directory address of dst.
// Node ids that are not in the directory but parse as "host:port" are sent
// to that address directly: clients of a UDP deployment use their own
// socket address as node id, so servers can answer them without any
// directory entry (the paper's prototype likewise replies to the datagram
// source). Encoding appends into a pooled buffer; an envelope that would
// exceed maxDatagram fails here, before the socket write, with the message
// type and encoded size.
func (nd *udpNode) write(dst msg.NodeID, env msg.Envelope) error {
	nd.net.mu.RLock()
	addr, ok := nd.net.dir[dst]
	nd.net.mu.RUnlock()
	if !ok {
		ua, err := net.ResolveUDPAddr("udp", string(dst))
		if err != nil || ua.Port == 0 {
			return ErrUnknownNode
		}
		nd.net.mu.Lock()
		nd.net.dir[dst] = ua
		nd.net.mu.Unlock()
		addr = ua
	}
	bp := wire.GetBuffer()
	data, err := wire.AppendEncode((*bp)[:0], env)
	if err != nil {
		wire.PutBuffer(bp)
		return err
	}
	*bp = data
	if len(data) > maxDatagram {
		nd.net.oversize.Inc()
		tag, _ := msg.TagOf(env.Msg)
		wire.PutBuffer(bp)
		return fmt.Errorf("transport: %s envelope encodes to %d bytes, exceeding the %d-byte datagram limit", tag, len(data), maxDatagram)
	}
	_, werr := nd.conn.WriteToUDP(data, addr)
	n := len(data)
	wire.PutBuffer(bp)
	if werr != nil {
		return fmt.Errorf("transport: sending to %s: %w", dst, werr)
	}
	nd.net.datagramsOut.Inc()
	nd.net.bytesOut.Add(int64(n))
	return nil
}

// Send implements Node.
func (nd *udpNode) Send(to msg.NodeID, m msg.Message) error {
	return nd.write(to, msg.Envelope{From: nd.id, Msg: m})
}

// Call implements Node.
func (nd *udpNode) Call(ctx context.Context, to msg.NodeID, m msg.Message) (msg.Message, error) {
	corr, ch := nd.calls.register()
	if err := nd.write(to, msg.Envelope{From: nd.id, CorrID: corr, Msg: m}); err != nil {
		nd.calls.cancel(corr)
		return nil, err
	}
	return nd.calls.await(ctx, corr, ch)
}

// Close implements Node.
func (nd *udpNode) Close() error {
	nd.net.mu.Lock()
	delete(nd.net.nodes, nd.id)
	nd.net.mu.Unlock()
	return nd.conn.Close()
}
