package transport

import (
	"context"
	"fmt"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/metrics"
	"locsvc/internal/msg"
)

// waitCounter polls a counter until it reaches want or the deadline passes.
func waitCounter(t *testing.T, c *metrics.Counter, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Value() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s = %d, want ≥ %d", what, c.Value(), want)
}

// TestUDPBatchingCoalesces drives a burst of one-way sends through a
// batching UDP network and checks the tentpole's arithmetic: far fewer
// datagrams than envelopes hit the wire, batches appear in the metrics,
// and every envelope still arrives exactly once.
func TestUDPBatchingCoalesces(t *testing.T) {
	const burst = 64
	reg := metrics.NewRegistry()
	nw := NewUDPWithOptions(UDPOptions{
		Metrics:     reg,
		BatchMax:    16,
		BatchLinger: 2 * time.Millisecond,
	})
	defer nw.Close()

	if _, err := nw.Attach("sink", nil); err != nil {
		t.Fatal(err)
	}
	src, err := nw.Attach("src", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < burst; i++ {
		if err := src.Send("sink", msg.NotifyAvailAcc{OID: "o", OfferedAcc: float64(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitCounter(t, reg.Counter("wire_envelopes_in"), burst, "wire_envelopes_in")

	if got := reg.Counter("wire_envelopes_out").Value(); got != burst {
		t.Errorf("wire_envelopes_out = %d, want %d", got, burst)
	}
	if got := reg.Counter("wire_batches_out").Value(); got < 1 {
		t.Errorf("wire_batches_out = %d, want ≥ 1", got)
	}
	if got := reg.Counter("wire_batches_in").Value(); got < 1 {
		t.Errorf("wire_batches_in = %d, want ≥ 1", got)
	}
	// The point of the exercise: the burst rode in far fewer datagrams
	// than envelopes. 64 envelopes at a 16-envelope cap need only 4
	// datagrams; allow slack for linger flushes mid-burst.
	if got := reg.Counter("wire_datagrams_out").Value(); got > burst/2 {
		t.Errorf("wire_datagrams_out = %d for %d envelopes, batching ineffective", got, burst)
	}
	if h := reg.Histogram("wire_envelopes_per_batch"); h.Count() < 1 || h.Max() < 2 {
		t.Errorf("wire_envelopes_per_batch: count %d max %.0f, want batches observed", h.Count(), h.Max())
	}
}

// TestUDPBatchingInterop pins wire compatibility in both directions: a
// batching sender talks to a non-batching receiver (1-envelope flushes are
// legacy frames; multi-envelope batches are decoded by the batch-aware
// read loop every UDP node runs), and a non-batching sender talks to a
// batching receiver.
func TestUDPBatchingInterop(t *testing.T) {
	regA := metrics.NewRegistry()
	batching := NewUDPWithOptions(UDPOptions{Metrics: regA, BatchMax: 8, BatchLinger: time.Millisecond})
	defer batching.Close()
	plain := NewUDP()
	defer plain.Close()

	got := make(chan float64, 64)
	if _, err := plain.Attach("plain-sink", func(_ context.Context, _ msg.NodeID, m msg.Message) (msg.Message, error) {
		if n, ok := m.(msg.NotifyAvailAcc); ok {
			got <- n.OfferedAcc
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	src, err := batching.Attach("batch-src", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-network: the batching node needs a route to the plain one.
	sinkAddr, ok := plain.Route("plain-sink")
	if !ok {
		t.Fatal("plain network has no route to its own node")
	}
	if err := batching.AddRoute("plain-sink", sinkAddr); err != nil {
		t.Fatal(err)
	}

	const n = 24
	for i := 0; i < n; i++ {
		if err := src.Send("plain-sink", msg.NotifyAvailAcc{OID: "o", OfferedAcc: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[float64]bool)
	timeout := time.After(2 * time.Second)
	for len(seen) < n {
		select {
		case v := <-got:
			if seen[v] {
				t.Fatalf("value %v delivered twice", v)
			}
			seen[v] = true
		case <-timeout:
			t.Fatalf("only %d/%d envelopes arrived at the plain receiver", len(seen), n)
		}
	}
	if out := regA.Counter("wire_datagrams_out").Value(); out >= n {
		t.Errorf("batching sender used %d datagrams for %d envelopes", out, n)
	}
}

// TestUDPBatchSizeCapFlush checks the size-aware flush: envelopes too big
// to share one maxDatagram datagram are split across datagrams instead of
// producing an oversize write error.
func TestUDPBatchSizeCapFlush(t *testing.T) {
	reg := metrics.NewRegistry()
	nw := NewUDPWithOptions(UDPOptions{
		Metrics:     reg,
		BatchMax:    64,
		BatchLinger: 5 * time.Millisecond,
	})
	defer nw.Close()
	if _, err := nw.Attach("sink", nil); err != nil {
		t.Fatal(err)
	}
	src, err := nw.Attach("src", nil)
	if err != nil {
		t.Fatal(err)
	}

	// ~40 bytes per entry: 1k entries ≈ 40 KiB per envelope, so two never
	// fit in one 65,507-byte datagram.
	objs := make([]core.Entry, 1_000)
	for i := range objs {
		objs[i] = core.Entry{
			OID: core.OID(fmt.Sprintf("object-%08d", i)),
			LD:  core.LocationDescriptor{Pos: geo.Pt(float64(i), float64(i)), Acc: 10},
		}
	}
	const big = 4
	for i := 0; i < big; i++ {
		if err := src.Send("sink", msg.RangeQueryRes{Objs: objs, Servers: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitCounter(t, reg.Counter("wire_envelopes_in"), big, "wire_envelopes_in")
	// Each oversize envelope forced its own flush: no datagram carried two.
	if got := reg.Counter("wire_datagrams_out").Value(); got < big {
		t.Errorf("wire_datagrams_out = %d, want ≥ %d (size cap must split the batch)", got, big)
	}
}

// TestUDPCallRoundTripWithBatching runs the request/response path with
// batching enabled end to end: coalescing must not break correlation.
func TestUDPCallRoundTripWithBatching(t *testing.T) {
	nw := NewUDPWithOptions(UDPOptions{BatchMax: 8, BatchLinger: time.Millisecond})
	defer nw.Close()
	if _, err := nw.Attach("server", valueEchoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := nw.Attach("client", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 1; i <= 8; i++ {
		resp, err := cli.Call(ctx, "server", msg.ChangeAccReq{OID: "o", DesAcc: float64(i)})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if res, ok := resp.(msg.ChangeAccRes); !ok || res.OfferedAcc != float64(i) {
			t.Fatalf("call %d resolved with %#v", i, resp)
		}
	}
	waitQuiesced(t, cli)
}
