package msg

// Tag is the one-byte wire identifier of a concrete Message type. Tags are
// part of the binary wire format (package locsvc/internal/wire): a tag
// value, once assigned, is frozen forever. New message types take the next
// free value; removed types retire their value without reuse. Keeping the
// registry here — next to the type definitions — makes "add a message"
// a one-file change before the codec even compiles.
type Tag uint8

// The tag registry. Values are wire-frozen; do not renumber.
const (
	// TagInvalid is the zero Tag; it never appears on the wire.
	TagInvalid Tag = 0

	TagRegisterReq      Tag = 1
	TagRegisterRes      Tag = 2
	TagRegisterFailed   Tag = 3
	TagCreatePath       Tag = 4
	TagRemovePath       Tag = 5
	TagUpdateReq        Tag = 6
	TagUpdateRes        Tag = 7
	TagHandoverReq      Tag = 8
	TagHandoverRes      Tag = 9
	TagDeregisterReq    Tag = 10
	TagDeregisterRes    Tag = 11
	TagChangeAccReq     Tag = 12
	TagChangeAccRes     Tag = 13
	TagNotifyAvailAcc   Tag = 14
	TagRequestUpdate    Tag = 15
	TagPosQueryReq      Tag = 16
	TagPosQueryDirect   Tag = 17
	TagPosQueryRes      Tag = 18
	TagPosQueryFwd      Tag = 19
	TagRangeQueryReq    Tag = 20
	TagRangeQueryFwd    Tag = 21
	TagRangeQuerySubRes Tag = 22
	TagRangeQueryRes    Tag = 23
	TagNeighborQueryReq Tag = 24
	TagNeighborQueryRes Tag = 25
	TagEventSubscribe   Tag = 26
	TagEventUnsubscribe Tag = 27
	TagEventCount       Tag = 28
	TagEventNotify      Tag = 29
	TagDiagReq          Tag = 30
	TagDiagRes          Tag = 31
	TagAck              Tag = 32
	TagErrorRes         Tag = 33
	TagReplAppend       Tag = 34
	TagReplAck          Tag = 35
	TagRunFetch         Tag = 36
	TagRunFetchRes      Tag = 37
	TagPromote          Tag = 38
	TagPromoteRes       Tag = 39

	// tagEnd is one past the highest assigned tag.
	tagEnd Tag = 40
)

// tagNames indexes message type names by tag, for diagnostics (oversize
// datagram errors, decode failures, stats).
var tagNames = [tagEnd]string{
	TagRegisterReq:      "RegisterReq",
	TagRegisterRes:      "RegisterRes",
	TagRegisterFailed:   "RegisterFailed",
	TagCreatePath:       "CreatePath",
	TagRemovePath:       "RemovePath",
	TagUpdateReq:        "UpdateReq",
	TagUpdateRes:        "UpdateRes",
	TagHandoverReq:      "HandoverReq",
	TagHandoverRes:      "HandoverRes",
	TagDeregisterReq:    "DeregisterReq",
	TagDeregisterRes:    "DeregisterRes",
	TagChangeAccReq:     "ChangeAccReq",
	TagChangeAccRes:     "ChangeAccRes",
	TagNotifyAvailAcc:   "NotifyAvailAcc",
	TagRequestUpdate:    "RequestUpdate",
	TagPosQueryReq:      "PosQueryReq",
	TagPosQueryDirect:   "PosQueryDirect",
	TagPosQueryRes:      "PosQueryRes",
	TagPosQueryFwd:      "PosQueryFwd",
	TagRangeQueryReq:    "RangeQueryReq",
	TagRangeQueryFwd:    "RangeQueryFwd",
	TagRangeQuerySubRes: "RangeQuerySubRes",
	TagRangeQueryRes:    "RangeQueryRes",
	TagNeighborQueryReq: "NeighborQueryReq",
	TagNeighborQueryRes: "NeighborQueryRes",
	TagEventSubscribe:   "EventSubscribe",
	TagEventUnsubscribe: "EventUnsubscribe",
	TagEventCount:       "EventCount",
	TagEventNotify:      "EventNotify",
	TagDiagReq:          "DiagReq",
	TagDiagRes:          "DiagRes",
	TagAck:              "Ack",
	TagErrorRes:         "ErrorRes",
	TagReplAppend:       "ReplAppend",
	TagReplAck:          "ReplAck",
	TagRunFetch:         "RunFetch",
	TagRunFetchRes:      "RunFetchRes",
	TagPromote:          "Promote",
	TagPromoteRes:       "PromoteRes",
}

// String returns the message type name the tag identifies.
func (t Tag) String() string {
	if t < tagEnd && tagNames[t] != "" {
		return tagNames[t]
	}
	return "Tag(" + itoa(uint8(t)) + ")"
}

// itoa formats a uint8 without pulling strconv into the hot-path package
// surface (String is diagnostics-only; this keeps it allocation-trivial).
func itoa(v uint8) string {
	if v == 0 {
		return "0"
	}
	var b [3]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = '0' + v%10
		v /= 10
	}
	return string(b[i:])
}

// TagOf returns the wire tag of a concrete message. The second return is
// false for nil or unregistered payloads (which cannot be encoded).
func TagOf(m Message) (Tag, bool) {
	switch m.(type) {
	case RegisterReq:
		return TagRegisterReq, true
	case RegisterRes:
		return TagRegisterRes, true
	case RegisterFailed:
		return TagRegisterFailed, true
	case CreatePath:
		return TagCreatePath, true
	case RemovePath:
		return TagRemovePath, true
	case UpdateReq:
		return TagUpdateReq, true
	case UpdateRes:
		return TagUpdateRes, true
	case HandoverReq:
		return TagHandoverReq, true
	case HandoverRes:
		return TagHandoverRes, true
	case DeregisterReq:
		return TagDeregisterReq, true
	case DeregisterRes:
		return TagDeregisterRes, true
	case ChangeAccReq:
		return TagChangeAccReq, true
	case ChangeAccRes:
		return TagChangeAccRes, true
	case NotifyAvailAcc:
		return TagNotifyAvailAcc, true
	case RequestUpdate:
		return TagRequestUpdate, true
	case PosQueryReq:
		return TagPosQueryReq, true
	case PosQueryDirect:
		return TagPosQueryDirect, true
	case PosQueryRes:
		return TagPosQueryRes, true
	case PosQueryFwd:
		return TagPosQueryFwd, true
	case RangeQueryReq:
		return TagRangeQueryReq, true
	case RangeQueryFwd:
		return TagRangeQueryFwd, true
	case RangeQuerySubRes:
		return TagRangeQuerySubRes, true
	case RangeQueryRes:
		return TagRangeQueryRes, true
	case NeighborQueryReq:
		return TagNeighborQueryReq, true
	case NeighborQueryRes:
		return TagNeighborQueryRes, true
	case EventSubscribe:
		return TagEventSubscribe, true
	case EventUnsubscribe:
		return TagEventUnsubscribe, true
	case EventCount:
		return TagEventCount, true
	case EventNotify:
		return TagEventNotify, true
	case DiagReq:
		return TagDiagReq, true
	case DiagRes:
		return TagDiagRes, true
	case Ack:
		return TagAck, true
	case ErrorRes:
		return TagErrorRes, true
	case ReplAppend:
		return TagReplAppend, true
	case ReplAck:
		return TagReplAck, true
	case RunFetch:
		return TagRunFetch, true
	case RunFetchRes:
		return TagRunFetchRes, true
	case Promote:
		return TagPromote, true
	case PromoteRes:
		return TagPromoteRes, true
	}
	return TagInvalid, false
}

// AllTags returns every assigned tag in ascending order. Tests iterate it
// to prove codec coverage of the full registry.
func AllTags() []Tag {
	tags := make([]Tag, 0, tagEnd-1)
	for t := Tag(1); t < tagEnd; t++ {
		if tagNames[t] != "" {
			tags = append(tags, t)
		}
	}
	return tags
}
