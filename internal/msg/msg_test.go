package msg

import (
	"errors"
	"fmt"
	"testing"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

func TestLeafInfoValid(t *testing.T) {
	if (LeafInfo{}).Valid() {
		t.Error("zero LeafInfo reported valid")
	}
	li := LeafInfo{ID: "r.0", Area: core.AreaFromRect(geo.R(0, 0, 1, 1))}
	if !li.Valid() {
		t.Error("populated LeafInfo reported invalid")
	}
	if (LeafInfo{ID: "r.0"}).Valid() {
		t.Error("LeafInfo without area reported valid")
	}
	if (LeafInfo{Area: core.AreaFromRect(geo.R(0, 0, 1, 1))}).Valid() {
		t.Error("LeafInfo without id reported valid")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		err  error
		code string
	}{
		{"not found", fmt.Errorf("lookup: %w", core.ErrNotFound), CodeNotFound},
		{"accuracy", core.ErrAccuracy, CodeAccuracy},
		{"out of area", core.ErrOutOfArea, CodeOutOfArea},
		{"bad request", core.ErrBadRequest, CodeBadRequest},
		{"other", errors.New("disk on fire"), CodeInternal},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := ErrorResFrom(tt.err)
			if res.Code != tt.code {
				t.Fatalf("code = %q, want %q", res.Code, tt.code)
			}
			back := res.Err()
			switch tt.code {
			case CodeNotFound:
				if !errors.Is(back, core.ErrNotFound) {
					t.Error("sentinel lost across wire")
				}
			case CodeAccuracy:
				if !errors.Is(back, core.ErrAccuracy) {
					t.Error("sentinel lost across wire")
				}
			case CodeOutOfArea:
				if !errors.Is(back, core.ErrOutOfArea) {
					t.Error("sentinel lost across wire")
				}
			case CodeBadRequest:
				if !errors.Is(back, core.ErrBadRequest) {
					t.Error("sentinel lost across wire")
				}
			case CodeInternal:
				if back == nil {
					t.Error("internal error became nil")
				}
			}
		})
	}
}

func TestAsError(t *testing.T) {
	if err := AsError(Ack{}); err != nil {
		t.Errorf("Ack produced error %v", err)
	}
	if err := AsError(ErrorResFrom(core.ErrNotFound)); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("AsError = %v", err)
	}
}
