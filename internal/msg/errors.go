package msg

import (
	"errors"
	"fmt"

	"locsvc/internal/core"
)

// Error codes carried in ErrorRes payloads.
const (
	CodeNotFound   = "not_found"
	CodeAccuracy   = "accuracy"
	CodeOutOfArea  = "out_of_area"
	CodeBadRequest = "bad_request"
	CodeTimeout    = "timeout"
	// CodeUnavailable marks an answer that could not be produced because
	// the responsible server was unreachable (breaker open, crashed leaf,
	// partition). Distinct from CodeTimeout: the caller's budget did not
	// expire, the hierarchy answered fast in degraded mode.
	CodeUnavailable = "unavailable"
	CodeInternal    = "internal"
)

// ErrorResFrom converts an error into a transportable ErrorRes, mapping the
// core sentinel errors onto stable codes.
func ErrorResFrom(err error) ErrorRes {
	code := CodeInternal
	switch {
	case errors.Is(err, core.ErrNotFound):
		code = CodeNotFound
	case errors.Is(err, core.ErrAccuracy):
		code = CodeAccuracy
	case errors.Is(err, core.ErrOutOfArea):
		code = CodeOutOfArea
	case errors.Is(err, core.ErrBadRequest):
		code = CodeBadRequest
	case errors.Is(err, core.ErrTimeout):
		code = CodeTimeout
	case errors.Is(err, core.ErrUnavailable):
		code = CodeUnavailable
	}
	return ErrorRes{Code: code, Text: err.Error()}
}

// Err converts a received ErrorRes back into an error, restoring the core
// sentinels so callers can use errors.Is across the wire.
func (e ErrorRes) Err() error {
	var base error
	switch e.Code {
	case CodeNotFound:
		base = core.ErrNotFound
	case CodeAccuracy:
		base = core.ErrAccuracy
	case CodeOutOfArea:
		base = core.ErrOutOfArea
	case CodeBadRequest:
		base = core.ErrBadRequest
	case CodeTimeout:
		base = core.ErrTimeout
	case CodeUnavailable:
		base = core.ErrUnavailable
	default:
		return fmt.Errorf("msg: remote error: %s", e.Text)
	}
	return fmt.Errorf("%w (%s)", base, e.Text)
}

// AsError returns the error carried by m if it is an ErrorRes, nil
// otherwise. It is the standard post-Call check.
func AsError(m Message) error {
	if e, ok := m.(ErrorRes); ok {
		return e.Err()
	}
	return nil
}
