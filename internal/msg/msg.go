// Package msg defines the wire protocol of the location service: one typed
// message per protocol step of the paper's Algorithms 6-1 … 6-5, plus the
// client-facing request/response pairs of the service interface (Section 3)
// and the small amount of piggybacked information the leaf caches of
// Section 6.5 feed on.
//
// Messages travel in Envelopes over a transport.Network. Two interaction
// styles are used, mirroring the paper:
//
//   - hop-by-hop calls with replies travelling back along the request path
//     (updates, handovers, client requests to the entry server), and
//   - one-way forwards through the hierarchy whose final responses are sent
//     directly to the originating entry server, matched by OpID (position
//     and range query forwarding, registration).
package msg

import (
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// NodeID identifies a node on the network: a location server, a client or
// a tracked object. Server ids are hierarchical path labels ("r", "r.2",
// "r.2.0"); client and object ids are free-form.
type NodeID string

// Envelope wraps a message for transmission.
type Envelope struct {
	// From is the sending node.
	From NodeID
	// CorrID correlates a hop-by-hop reply with its request; zero for
	// one-way messages.
	CorrID uint64
	// Reply marks the envelope as the reply to the call identified by
	// CorrID.
	Reply bool
	// Msg is the payload.
	Msg Message
}

// Message is implemented by every protocol payload.
type Message interface {
	isMessage()
}

// Origin describes where the final response of a tree-routed operation must
// be delivered: the entry server (or client) and the operation id its
// waiter is registered under.
type Origin struct {
	Node NodeID
	OpID uint64
}

// LeafInfo is piggybacked on messages originated by leaf servers so
// receivers can populate their (leaf server → service area) cache
// (Section 6.5). A zero LeafInfo carries no information.
type LeafInfo struct {
	ID   NodeID
	Area core.Area
}

// Valid reports whether the LeafInfo carries a mapping.
func (li LeafInfo) Valid() bool { return li.ID != "" && !li.Area.Empty() }

// ---------------------------------------------------------------------------
// Registration (Algorithm 6-1).

// RegisterReq asks the service to start tracking an object. It is sent by
// the registering instance to its entry server and forwarded through the
// hierarchy to the leaf responsible for S.Pos.
type RegisterReq struct {
	S       core.Sighting
	RegInfo core.RegInfo
	// Origin is where RegisterRes/RegisterFailed is sent.
	Origin Origin
	// Hops counts forwarding steps for metrics.
	Hops int
	// Seq is the sender's per-node sequence number (shared counter with
	// UpdateReq.Seq; see that field). A leaf remembers the last replies
	// per (Origin.Node, Seq) so a retried registration is applied exactly
	// once and the original outcome is re-sent. 0 means unstamped.
	Seq uint64
}

// RegisterRes reports successful registration: the object's agent and the
// accuracy the agent offers.
type RegisterRes struct {
	OpID       uint64
	Agent      NodeID
	AgentInfo  LeafInfo
	OfferedAcc float64
	Hops       int
}

// RegisterFailed reports that the leaf cannot provide an accuracy within
// the requested range; Achievable is the best it could do.
type RegisterFailed struct {
	OpID       uint64
	Server     NodeID
	Achievable float64
}

// CreatePath is sent leaf-to-root after a successful registration; each
// receiving server records a forwarding reference to the child it received
// the message from (the envelope's From).
type CreatePath struct {
	OID  core.OID
	Leaf LeafInfo
	// SightingT is the timestamp of the sighting that caused this path
	// (registration or handover). Servers stamp their records with it
	// and ignore older path messages, making prune/repair races between
	// consecutive handovers harmless. Every CreatePath — registration or
	// post-direct-handover repair — climbs to the root: stopping at the
	// first existing record (the apparent lowest common ancestor) is
	// unsound when stale leftovers from reordered messages exist.
	SightingT time.Time
}

// RemovePath deletes an object's forwarding references bottom-up; it is the
// inverse of CreatePath, used by deregistration, soft-state expiry and
// old-branch pruning after a cache-shortcut direct handover.
type RemovePath struct {
	OID core.OID
	// SightingT is the timestamp of the last sighting the sender holds
	// for the object; records stamped with a newer sighting time refuse
	// the removal (a fresher path was installed meanwhile).
	SightingT time.Time
	// HasNewPos marks a handover prune: the object still exists and
	// NewPos is its current position. Servers whose service area
	// contains NewPos are ancestors of the NEW agent as well — at and
	// above the lowest common ancestor the old and new forwarding paths
	// coincide — so they must keep their records; only the stale branch
	// strictly below the LCA is removed.
	HasNewPos bool
	NewPos    geo.Point
}

// ---------------------------------------------------------------------------
// Updates and handover (Algorithms 6-2 and 6-3).

// UpdateReq delivers a new sighting from a tracked object to its agent.
// The reply is UpdateRes — the paper's acknowledged update.
type UpdateReq struct {
	S core.Sighting
	// Seq is the sender's per-node sequence number, drawn from one
	// monotonic counter per client (mirroring EventCount.Seq). The agent
	// keeps a dedupe window keyed (sender, Seq) and applies a retried
	// duplicate exactly once, replying with the remembered UpdateRes —
	// critical when the first attempt triggered a handover and a re-apply
	// would fail with not_found. 0 means unstamped (no dedupe).
	Seq uint64
}

// UpdateRes acknowledges an update. If the update triggered a handover,
// Moved is true and NewAgent names the object's new agent server, which the
// object must contact from now on.
type UpdateRes struct {
	Moved      bool
	NewAgent   NodeID
	AgentInfo  LeafInfo
	OfferedAcc float64
}

// HandoverReq transfers tracking responsibility after an object left its
// agent's service area. It is a hop-by-hop call: up from the old agent
// until the sighting is inside the receiver's area, then down to the new
// leaf; replies travel back along the same path, fixing forwarding
// references (Algorithm 6-3).
type HandoverReq struct {
	S       core.Sighting
	RegInfo core.RegInfo
	// OldAgent lets servers on the upward path distinguish the direction
	// the request came from.
	OldAgent NodeID
	// Direct marks a cache-shortcut handover sent leaf-to-leaf without
	// traversing the hierarchy (Section 6.5). The receiving leaf then
	// repairs the forwarding path with CreatePath while the old agent
	// prunes its stale branch with RemovePath.
	Direct bool
	Hops   int
}

// PosQueryDirect is a cache-shortcut position query sent by an entry server
// straight to an object's cached agent (Section 6.5, (object → agent)
// cache). The reply is PosQueryRes, or an ErrorRes with CodeNotFound when
// the cache entry was stale.
type PosQueryDirect struct {
	OID core.OID
}

// HandoverRes carries the new agent back along the handover path.
type HandoverRes struct {
	NewAgent   NodeID
	AgentInfo  LeafInfo
	OfferedAcc float64
	Hops       int
}

// DeregisterReq removes an object from the service (sent to its agent).
type DeregisterReq struct {
	OID core.OID
}

// DeregisterRes acknowledges deregistration.
type DeregisterRes struct{}

// ChangeAccReq renegotiates the accuracy range for a tracked object
// (Section 3.1, changeAcc); sent to the object's agent.
type ChangeAccReq struct {
	OID    core.OID
	DesAcc float64
	MinAcc float64
}

// ChangeAccRes returns the newly offered accuracy; OK is false if the
// requested range cannot be met (the old registration stays in force).
type ChangeAccRes struct {
	OK         bool
	OfferedAcc float64
}

// NotifyAvailAcc informs a registering instance that the accuracy offered
// for its object changed (Section 3.1, notifyAvailAcc) — typically after a
// handover to a leaf with different sensor infrastructure.
type NotifyAvailAcc struct {
	OID        core.OID
	OfferedAcc float64
}

// RequestUpdate asks a tracked object for an immediate position update; a
// recovering leaf server uses it to restore sightings for visitors found in
// its persistent visitorDB (Section 5).
type RequestUpdate struct {
	OID core.OID
}

// ---------------------------------------------------------------------------
// Position query (Algorithm 6-4).

// PosQueryReq is a client's position query, a call to its entry server.
type PosQueryReq struct {
	OID core.OID
	// MaxAge, if positive, allows the entry server to answer from its
	// position-descriptor cache as long as the aged accuracy stays below
	// AccBound (Section 6.5, position-descriptor caching).
	AccBound float64
}

// PosQueryRes answers a position query.
type PosQueryRes struct {
	OpID  uint64
	Found bool
	LD    core.LocationDescriptor
	// Agent names the object's agent so the entry server can fill its
	// (object → agent) cache.
	Agent     NodeID
	AgentInfo LeafInfo
	// MaxSpeed is the object's declared maximum speed, letting caches
	// age the descriptor (acc + vmax·Δt, Section 6.5).
	MaxSpeed float64
	Hops     int
	// Partial marks a degraded answer: part of the hierarchy needed to
	// resolve the query was unreachable (open breaker, crashed server),
	// so Found=false means "could not determine", not "not tracked".
	Partial bool
}

// PosQueryFwd routes a position query through the hierarchy: up until a
// forwarding reference is found, then down the forwarding path to the
// agent, which sends PosQueryRes directly to the entry server.
type PosQueryFwd struct {
	OID    core.OID
	Origin Origin
	Hops   int
}

// ---------------------------------------------------------------------------
// Range query (Algorithm 6-5).

// RangeQueryReq is a client's range query, a call to its entry server.
type RangeQueryReq struct {
	Area       core.Area
	ReqAcc     float64
	ReqOverlap float64
}

// RangeQueryFwd routes a range query: up until the receiver's service area
// covers the (enlarged) query area, then down to every leaf overlapping it.
// Prev identifies the hierarchy neighbor the message arrived from so it is
// not immediately forwarded back (Algorithm 6-5's lsf checks).
type RangeQueryFwd struct {
	Area       core.Area
	ReqAcc     float64
	ReqOverlap float64
	Origin     Origin
	Hops       int
}

// RangeQuerySubRes is a leaf's partial result, sent directly to the entry
// server: the qualifying objects plus the measure of the query-area part
// this leaf covers, which the entry server tallies for completion.
type RangeQuerySubRes struct {
	OpID uint64
	Objs []core.Entry
	// CoveredSize is SIZE(area ∩ leaf.sa).
	CoveredSize float64
	Leaf        LeafInfo
	Hops        int
	// Unreachable lists children this coordinator could not forward to
	// (open breaker or failed tracked send); UnreachableSize is the
	// measure of area ∩ their service areas, which the entry server adds
	// to its dark-cover tally so a degraded query still terminates fast
	// instead of waiting for the full query timeout.
	Unreachable     []NodeID
	UnreachableSize float64
}

// RangeQueryRes is the entry server's assembled answer to the client.
type RangeQueryRes struct {
	Objs []core.Entry
	// Servers is the number of leaf servers that contributed.
	Servers int
	Hops    int
	// Partial marks a degraded answer: some leaves covering the query
	// area were unreachable, so Objs may be missing their records.
	// Unreachable names the dark servers (best effort, deduplicated).
	Partial     bool
	Unreachable []NodeID
}

// ---------------------------------------------------------------------------
// Nearest-neighbor query (semantics in Section 3.2).

// NeighborQueryReq is a client's nearest-neighbor query, a call to its
// entry server, which resolves it with an expanding-ring search over the
// range-query machinery.
type NeighborQueryReq struct {
	P        geo.Point
	ReqAcc   float64
	NearQual float64
}

// NeighborQueryRes answers a nearest-neighbor query.
type NeighborQueryRes struct {
	Found             bool
	Nearest           core.Entry
	Near              []core.Entry
	GuaranteedMinDist float64
	// Partial marks a degraded answer: an unreachable leaf overlapped one
	// of the search rings, so a closer neighbor may exist on a dark
	// server. Unreachable names the dark servers (deduplicated).
	Partial     bool
	Unreachable []NodeID
}

// ---------------------------------------------------------------------------
// Event mechanism (paper Section 1 / future work in Section 8).

// EventKind selects a predicate type.
type EventKind int

// Supported predicates.
const (
	// EventCountAbove fires when at least Threshold objects are inside
	// Area ("more than five objects are in a certain area").
	EventCountAbove EventKind = iota + 1
	// EventMeeting fires when two tracked objects come within Distance
	// of each other on the same leaf ("two users of the system meet").
	EventMeeting
)

// EventSubscribe installs a predicate subscription. It is routed through
// the hierarchy like a range query: every leaf whose service area overlaps
// Area installs it, counts its local qualifying objects and reports count
// changes to the coordinator (the subscriber's entry server).
type EventSubscribe struct {
	SubID       string
	Kind        EventKind
	Area        core.Area
	ReqAcc      float64
	Threshold   int
	Distance    float64
	Coordinator NodeID
	Subscriber  NodeID
}

// EventUnsubscribe removes a subscription on every involved leaf, routed
// like the subscription itself.
type EventUnsubscribe struct {
	SubID string
	Area  core.Area
}

// EventCount reports one leaf's current count of qualifying objects for a
// subscription to the coordinator.
type EventCount struct {
	SubID string
	Leaf  NodeID
	Count int
	// Seq is the leaf's per-subscription report sequence number. The
	// transport models UDP and can reorder deliveries; the coordinator
	// ignores reports older than the newest it has applied per leaf (the
	// same staleness guard forwarding paths get from PathT).
	Seq uint64
}

// EventNotify is the asynchronous notification delivered to the subscriber
// when a predicate becomes true (and when it becomes false again).
type EventNotify struct {
	SubID string
	Fired bool
	// Total is the aggregate count for EventCountAbove predicates.
	Total int
	// Objs names the objects involved for EventMeeting predicates.
	Objs []core.OID
	// Seq is the sender's per-subscription notification sequence number.
	// Notifications are retried (a lost datagram must not lose a predicate
	// transition), so the subscriber dedupes on it; zero means unsequenced
	// and is always delivered.
	Seq uint64
}

// ---------------------------------------------------------------------------
// Diagnostics.

// DiagReq asks a server for its diagnostic snapshot — store occupancy,
// sighting-shard layout and the metrics registry. Operator tooling (lsctl
// stats) calls it against any server in the deployment.
type DiagReq struct{}

// ShardDiag is one sighting shard's occupancy and write-lock pressure
// sample, mirroring store.ShardStat.
type ShardDiag struct {
	Len       int
	Ops       int64
	Contended int64
}

// TierDiag is a leaf's tiered-sighting-storage snapshot, mirroring
// store.TierStats. Present (non-nil) in a DiagRes only when tiering is
// enabled.
type TierDiag struct {
	// Warm reports that recovery has replayed every shard's WAL tail;
	// tier maintenance (flush/compaction) is gated until then.
	Warm bool
	// MemtableBytes is the estimated resident size of all shard
	// memtables; RunBytes the run files' on-disk size; MetaBytes the
	// resident run metadata (bloom filters and sparse indexes).
	MemtableBytes int64
	RunBytes      int64
	MetaBytes     int64
	// Runs counts run files across all shards; DiskRecords their records
	// (tombstones included); DiskLive the live subset.
	Runs        int
	DiskRecords int64
	DiskLive    int64
	// Flushes and Compactions are cumulative; BloomHits counts run
	// probes a bloom filter admitted, BloomMisses those it skipped.
	Flushes     int64
	Compactions int64
	BloomHits   int64
	BloomMisses int64
	// Backlog counts shards over the compaction threshold.
	Backlog int
}

// DiagRes answers a DiagReq.
type DiagRes struct {
	Server    NodeID
	IsLeaf    bool
	Visitors  int
	Sightings int
	// Shards describes the sighting store's current generation — the
	// per-shard occupancy and contention counters the AutoShard policy
	// resizes on. Empty on non-leaf servers and single-lock stores.
	Shards []ShardDiag
	// Epoch counts the sighting store's completed live resizes.
	Epoch uint64
	// Tier is the tiered-storage snapshot; nil when tiering is disabled.
	Tier *TierDiag
	// Repl is the replication snapshot; nil when the server has no
	// replication peer.
	Repl *ReplDiag
	// PipelineOps and PipelineHandoffs are the update pipeline's
	// cumulative update count and how many of those queued behind a
	// group-commit lane leader.
	PipelineOps      int64
	PipelineHandoffs int64
	// EventSubs is the number of event subscriptions installed on this
	// server's leaf engine; EventCoordSubs the number it coordinates
	// (aggregating per-leaf counts). Both zero on non-leaf servers.
	EventSubs      int
	EventCoordSubs int
	// Metrics is the server's metrics registry snapshot, one metric per
	// line.
	Metrics string
}

// ReplDiag is a server's replication snapshot: its role in the
// primary/standby pair, the fencing epoch, and the stream counters the
// lag gauges are built from. Present in a DiagRes only when a replication
// peer is configured.
type ReplDiag struct {
	// Role is "primary" or "standby".
	Role string
	// Peer is the replication peer's node id.
	Peer NodeID
	// Epoch is the replication fencing epoch; promotion increments it.
	Epoch uint64
	// Pending counts records queued or in flight toward the peer but not
	// yet acknowledged (the replication lag, in records). Acked counts
	// records the peer has confirmed applying.
	Pending int64
	Acked   int64
	// Fenced counts appends this server rejected because they carried a
	// stale epoch (a zombie primary writing after its replacement).
	Fenced int64
	// RunsInstalled counts immutable run files this server fetched from
	// its peer and installed (run shipping).
	RunsInstalled int64
	// Resyncs counts full-shard snapshot transfers (bootstrap, gap
	// healing and post-failover catch-up).
	Resyncs int64
}

// ---------------------------------------------------------------------------
// Replication (primary/standby leaf pairs).

// ReplOp is the kind of one replicated stream record.
type ReplOp uint8

// Replicated stream record kinds. SightingPut/SightingRemove mirror the
// sighting WAL tail; VisitorPut/VisitorRemove mirror the visitor log;
// Runs announces a flush or compaction whose immutable run files the
// standby fetches via RunFetch; Snapshot carries a full stream state and
// resets the receiver (bootstrap, gap healing, post-failover catch-up).
const (
	ReplSightingPut ReplOp = iota + 1
	ReplSightingRemove
	ReplVisitorPut
	ReplVisitorRemove
	ReplRuns
	ReplSnapshot
)

// VisitorState is the wire form of one visitor record (store.VisitorRecord)
// for replication streams.
type VisitorState struct {
	OID        core.OID
	ForwardRef string
	OfferedAcc float64
	RegInfo    core.RegInfo
	PathT      time.Time
}

// ReplRecord is one record of a replication stream. Op selects which
// payload fields are meaningful; the rest ride along as zero values.
type ReplRecord struct {
	Op ReplOp
	// Sightings is the batch payload of a ReplSightingPut, and the live
	// memtable of a ReplSnapshot.
	Sightings []core.Sighting
	// OID is the removed object of a ReplSightingRemove/ReplVisitorRemove.
	OID core.OID
	// Visitor is the record of a ReplVisitorPut.
	Visitor VisitorState
	// Visitors is the full visitor set of a visitor-stream ReplSnapshot.
	Visitors []VisitorState
	// Dead is the tombstone set of a ReplSnapshot (objects removed from
	// the memtable but still present in run files).
	Dead []core.OID
	// Runs is the shard's run-file list, newest first, of a ReplRuns or
	// ReplSnapshot; NextSeq the shard's next run sequence number;
	// ClearMem whether the event was a flush (the receiver clears its
	// memtable — the flushed records are exactly the puts streamed before
	// this record) rather than a compaction.
	Runs    []string
	NextSeq uint64
	// ClearMem is set on the ReplRuns event of a flush.
	ClearMem bool
}

// ReplAppend ships a batch of seq-numbered stream records from a primary
// to its standby. Stream identifies the per-shard sighting stream (0 ≤
// Stream < shard count) or the visitor stream (Stream == shard count);
// FirstSeq is the sequence number of Recs[0], with consecutive records
// numbered consecutively. The receiver applies records through its normal
// store path and answers with a ReplAck.
type ReplAppend struct {
	// Epoch fences zombies: a receiver at a higher epoch rejects the
	// append (Fenced) instead of applying it.
	Epoch    uint64
	Stream   int
	FirstSeq uint64
	Recs     []ReplRecord
}

// ReplAck answers a ReplAppend. NextSeq is the receiver's next expected
// sequence number for the stream: on success FirstSeq+len(Recs), on a gap
// the old value with NeedSync set (the sender schedules a Snapshot), on a
// duplicate the already-applied high-water mark.
type ReplAck struct {
	// Epoch is the receiver's fencing epoch. Fenced reports that the
	// append carried a stale epoch and was rejected; the sender must
	// demote itself to standby and adopt Epoch.
	Epoch    uint64
	Stream   int
	NextSeq  uint64
	Fenced   bool
	NeedSync bool
}

// RunFetch asks a peer for a chunk of an immutable run file, addressed by
// (shard, file name). Off is the byte offset; MaxBytes caps the chunk so
// a transfer rides many small datagrams.
type RunFetch struct {
	Shard    int
	Name     string
	Off      int64
	MaxBytes int
}

// RunFetchRes answers a RunFetch with Data at the requested offset. Size
// is the run file's total byte size, so the fetcher knows when it is
// done; EOF confirms Off+len(Data) == Size.
type RunFetchRes struct {
	Size int64
	Data []byte
	EOF  bool
}

// Promote orders a standby to take over as primary (its parent detected
// the primary dead). Epoch 0 lets the standby pick its own next epoch;
// a non-zero value is a floor.
type Promote struct {
	Epoch uint64
}

// PromoteRes confirms a promotion with the new primary's fencing epoch.
type PromoteRes struct {
	Epoch uint64
}

// ---------------------------------------------------------------------------
// Generic responses.

// Ack is an empty success reply for one-way-style calls.
type Ack struct{}

// ErrorRes reports a failed call; Code is one of the core error names.
type ErrorRes struct {
	Code string
	Text string
}

func (RegisterReq) isMessage()      {}
func (RegisterRes) isMessage()      {}
func (RegisterFailed) isMessage()   {}
func (CreatePath) isMessage()       {}
func (RemovePath) isMessage()       {}
func (UpdateReq) isMessage()        {}
func (UpdateRes) isMessage()        {}
func (HandoverReq) isMessage()      {}
func (HandoverRes) isMessage()      {}
func (DeregisterReq) isMessage()    {}
func (DeregisterRes) isMessage()    {}
func (ChangeAccReq) isMessage()     {}
func (ChangeAccRes) isMessage()     {}
func (NotifyAvailAcc) isMessage()   {}
func (RequestUpdate) isMessage()    {}
func (PosQueryReq) isMessage()      {}
func (PosQueryDirect) isMessage()   {}
func (PosQueryRes) isMessage()      {}
func (PosQueryFwd) isMessage()      {}
func (RangeQueryReq) isMessage()    {}
func (RangeQueryFwd) isMessage()    {}
func (RangeQuerySubRes) isMessage() {}
func (RangeQueryRes) isMessage()    {}
func (NeighborQueryReq) isMessage() {}
func (NeighborQueryRes) isMessage() {}
func (EventSubscribe) isMessage()   {}
func (EventUnsubscribe) isMessage() {}
func (EventCount) isMessage()       {}
func (EventNotify) isMessage()      {}
func (DiagReq) isMessage()          {}
func (DiagRes) isMessage()          {}
func (Ack) isMessage()              {}
func (ErrorRes) isMessage()         {}
func (ReplAppend) isMessage()       {}
func (ReplAck) isMessage()          {}
func (RunFetch) isMessage()         {}
func (RunFetchRes) isMessage()      {}
func (Promote) isMessage()          {}
func (PromoteRes) isMessage()       {}
