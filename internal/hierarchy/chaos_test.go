package hierarchy_test

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/metrics"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

// TestChaosSoak drives the full resilience stack through a 2×2 hierarchy
// under 20% datagram loss while two of the four leaves crash and recover
// from their WALs. It asserts the layered failure story end to end:
//
//   - operations against live leaves keep succeeding via the retry budget,
//   - queries touching a dark leaf come back Partial, never as hard errors,
//   - the parent's circuit breaker toward a dark leaf opens under timeouts
//     and closes again within a few probe intervals of recovery,
//   - no in-flight call entry outlives the soak (the trackers quiesce),
//   - after full recovery the oracle invariants hold: every object is
//     found at its last accepted position and a whole-area range query is
//     complete and no longer partial.
func TestChaosSoak(t *testing.T) {
	const (
		dropRate    = 0.2
		callTimeout = 200 * time.Millisecond
		queryTO     = 500 * time.Millisecond
		cooldown    = 150 * time.Millisecond
	)

	reg := metrics.NewRegistry()
	net := transport.NewInproc(transport.InprocOptions{
		DropRate:         dropRate,
		Seed:             7,
		SweepInterval:    10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  cooldown,
		Metrics:          reg,
	})
	defer net.Close()

	dir := t.TempDir()
	walPath := func(id msg.NodeID) string { return filepath.Join(dir, string(id)+".wal") }
	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1500, 1500),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}
	base := server.Options{
		CallTimeout:  callTimeout,
		QueryTimeout: queryTO,
	}
	dep, err := hierarchy.DeployWith(net, spec, base, func(cfg store.ConfigRecord, o server.Options) (server.Options, error) {
		if cfg.IsLeaf() {
			wal, werr := store.OpenFileWAL(walPath(msg.NodeID(cfg.ID)))
			if werr != nil {
				return o, werr
			}
			o.WAL = wal
		}
		return o, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	rootArea := core.AreaFromRect(spec.RootArea)
	configFor := func(id msg.NodeID) store.ConfigRecord {
		for _, cfg := range dep.Configs {
			if msg.NodeID(cfg.ID) == id {
				return cfg
			}
		}
		t.Fatalf("no config for %s", id)
		return store.ConfigRecord{}
	}

	// One client and one object per quarter; each client's entry server
	// is the leaf that owns its quarter. o0/o2 live on the leaves that
	// will crash; o1/o3 are the "live" population whose operations must
	// never fail.
	retry := transport.RetryPolicy{
		MaxAttempts:   10,
		BaseBackoff:   20 * time.Millisecond,
		MaxBackoff:    150 * time.Millisecond,
		PerTryTimeout: 800 * time.Millisecond,
	}
	positions := map[string]geo.Point{
		"o0": geo.Pt(100, 100),
		"o1": geo.Pt(1200, 100),
		"o2": geo.Pt(100, 1200),
		"o3": geo.Pt(1200, 1200),
	}
	clients := map[string]*client.Client{}
	objects := map[string]*client.TrackedObject{}
	for oid, p := range positions {
		entry, ok := dep.LeafFor(p)
		if !ok {
			t.Fatalf("no leaf for %v", p)
		}
		c, cerr := client.New(net, msg.NodeID("owner-"+oid), entry, client.Options{
			Timeout: 15 * time.Second,
			Retry:   retry,
		})
		if cerr != nil {
			t.Fatal(cerr)
		}
		defer c.Close()
		obj, rerr := c.Register(soakCtx(t), sightingAt(oid, p), 10, 50, 3)
		if rerr != nil {
			t.Fatalf("register %s: %v", oid, rerr)
		}
		clients[oid] = c
		objects[oid] = obj
	}

	liveUpdate := func(oid string, p geo.Point) {
		t.Helper()
		if err := objects[oid].Update(soakCtx(t), sightingAt(oid, p)); err != nil {
			t.Fatalf("live update %s: %v", oid, err)
		}
		positions[oid] = p
	}
	wholeArea := core.AreaFromRect(geo.R(0, 0, 1500, 1500))

	rounds := 2
	if testing.Short() {
		rounds = 1
	}
	crashLeaves := []msg.NodeID{"r.0", "r.2"}
	darkObj := map[msg.NodeID]string{"r.0": "o0", "r.2": "o2"}

	for round := 0; round < rounds; round++ {
		for _, leaf := range crashLeaves {
			oid := darkObj[leaf]
			step := geo.Pt(float64(round+1)*5, 0)

			// Pause the leaf: deliveries in both directions are
			// dropped while its id stays attached — calls toward
			// it time out and feed the parent's breaker.
			net.SetNodeDown(leaf, true)

			// Live-leaf operations must ride the retry budget
			// through the loss and the dark quarter.
			liveUpdate("o1", positions["o1"].Add(step))
			liveUpdate("o3", positions["o3"].Add(step))

			// A query for the dark object degrades to unavailable,
			// never to not-found or a hard transport error.
			if _, qerr := clients["o1"].PosQuery(soakCtx(t), core.OID(oid)); !errors.Is(qerr, core.ErrUnavailable) {
				t.Fatalf("round %d: dark posquery for %s err = %v, want ErrUnavailable", round, oid, qerr)
			}

			// Whole-area range queries must come back Partial while
			// the leaf is dark, and the repeated fan-out timeouts
			// open the parent's breaker toward it.
			sawPartial := false
			deadline := time.Now().Add(10 * time.Second)
			for net.PeerState(dep.Root(), leaf) != transport.PeerOpen || !sawPartial {
				if time.Now().After(deadline) {
					t.Fatalf("round %d: breaker %s->%s never opened (partial seen: %v)",
						round, dep.Root(), leaf, sawPartial)
				}
				res, qerr := clients["o3"].RangeQueryFull(soakCtx(t), wholeArea, 100, 0.5)
				if qerr != nil {
					t.Fatalf("round %d: degraded range query: %v", round, qerr)
				}
				if res.Partial {
					sawPartial = true
				}
			}

			// With the breaker open, fan-out legs toward the dark
			// leaf are refused without burning a timeout. A lone
			// query every ~500ms always arrives past the cooldown
			// and is admitted as the probe, so fire bursts of
			// concurrent queries: the ones that land while a probe
			// is in flight (or inside an open window) are refused
			// and counted.
			brkBy := time.Now().Add(10 * time.Second)
			for reg.Counter("wire_breaker_open").Value() == 0 {
				if time.Now().After(brkBy) {
					t.Fatalf("round %d: no fail-fast rejection while %s dark", round, leaf)
				}
				var wg sync.WaitGroup
				qErrs := make([]error, 3)
				for i := range qErrs {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						_, qErrs[i] = clients["o3"].RangeQueryFull(soakCtx(t), wholeArea, 100, 0.5)
					}(i)
				}
				wg.Wait()
				for _, qerr := range qErrs {
					if qerr != nil {
						t.Fatalf("round %d: open-breaker range query: %v", round, qerr)
					}
				}
			}

			// Crash it for real: close the paused server (its WAL
			// closes with it) and restart from the same log. The
			// visitorDB survives; the sightingDB starts empty.
			net.SetNodeDown(leaf, false)
			if err := dep.Servers[leaf].Close(); err != nil {
				t.Fatal(err)
			}
			wal, werr := store.OpenFileWAL(walPath(leaf))
			if werr != nil {
				t.Fatal(werr)
			}
			opts := base
			opts.WAL = wal
			srv, serr := server.New(configFor(leaf), rootArea, net, opts)
			if serr != nil {
				t.Fatal(serr)
			}
			dep.Servers[leaf] = srv

			// The breaker must close again shortly after recovery:
			// the cooldown elapses, a probe call goes through, and
			// the parent resumes normal fan-out. Queries provide
			// the probe traffic. Loss can eat a probe (reopening
			// the breaker for another cooldown), so allow a few
			// probe intervals.
			closeBy := time.Now().Add(10 * time.Second)
			for net.PeerState(dep.Root(), leaf) != transport.PeerClosed {
				if time.Now().After(closeBy) {
					t.Fatalf("round %d: breaker %s->%s still %v after recovery",
						round, dep.Root(), leaf, net.PeerState(dep.Root(), leaf))
				}
				if _, qerr := clients["o3"].RangeQueryFull(soakCtx(t), wholeArea, 100, 0.5); qerr != nil {
					t.Fatalf("round %d: post-recovery range query: %v", round, qerr)
				}
				time.Sleep(cooldown / 3)
			}

			// The crashed leaf's object repopulates the rebuilt
			// sightingDB with its next update (the WAL-restored
			// visitor record accepts it), and the hierarchy is
			// whole again: a complete, non-partial answer with all
			// four objects must reappear.
			liveUpdate(oid, positions[oid].Add(step))
			wholeBy := time.Now().Add(10 * time.Second)
			for {
				res, qerr := clients["o1"].RangeQueryFull(soakCtx(t), wholeArea, 100, 0.5)
				if qerr == nil && !res.Partial && len(res.Objs) == len(positions) {
					break
				}
				if time.Now().After(wholeBy) {
					t.Fatalf("round %d: hierarchy never healed after %s restart (err=%v)", round, leaf, qerr)
				}
			}
		}
	}

	// No in-flight entry may outlive the soak: every server's call
	// tracker must drain.
	quiesceBy := time.Now().Add(5 * time.Second)
	for id, srv := range dep.Servers {
		for srv.PendingCalls() != 0 {
			if time.Now().After(quiesceBy) {
				t.Fatalf("server %s stuck with %d in-flight calls", id, srv.PendingCalls())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Oracle invariants after full recovery: every object is found at
	// its last accepted position. The 20% loss is still live, so one
	// attempt can legitimately degrade (a dropped internal fan-out
	// datagram reads as a dark subtree); the invariant is eventual
	// success, bounded by a deadline.
	for oid, want := range positions {
		oracleBy := time.Now().Add(10 * time.Second)
		for {
			ld, qerr := clients["o1"].PosQuery(soakCtx(t), core.OID(oid))
			if qerr == nil {
				if ld.Pos != want {
					t.Errorf("final position of %s = %v, want %v", oid, ld.Pos, want)
				}
				break
			}
			if !errors.Is(qerr, core.ErrUnavailable) {
				for id, srv := range dep.Servers {
					t.Logf("server %s: visitors=%d sightings=%d", id, srv.VisitorCount(), srv.SightingCount())
				}
				t.Fatalf("final posquery %s: %v", oid, qerr)
			}
			if time.Now().After(oracleBy) {
				t.Fatalf("final posquery %s still unavailable after recovery", oid)
			}
		}
	}

	// The soak must actually have exercised the machinery it claims to:
	// retries fired under loss, fail-fast rejections happened while
	// breakers were open, and coordinators produced degraded answers.
	for _, counter := range []string{"wire_retries", "wire_breaker_open"} {
		if reg.Counter(counter).Value() == 0 {
			t.Errorf("%s = 0, soak never exercised it", counter)
		}
	}
	degraded := int64(0)
	for _, srv := range dep.Servers {
		degraded += srv.Metrics().Counter("wire_degraded_queries").Value()
	}
	if degraded == 0 {
		t.Error("wire_degraded_queries = 0 across all servers")
	}
}

func soakCtx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return c
}

func sightingAt(id string, p geo.Point) core.Sighting {
	return core.Sighting{OID: core.OID(id), T: time.Now(), Pos: p, SensAcc: 5}
}
