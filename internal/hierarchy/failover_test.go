package hierarchy_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/metrics"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

// TestFailoverSoak extends the chaos soak to tiered, replicated leaves:
// every leaf runs with a hot standby mirroring it via WAL-tail streaming
// and run shipping, and the root health-checks the primaries. The soak
// kills one primary mid-flush under 20% datagram loss and asserts the
// full failover story:
//
//   - the root detects the dead primary and promotes its standby within
//     a bounded window (repl_failovers fires exactly once),
//   - every update acknowledged before the kill — the replication queue
//     was drained first — is queryable at the promoted standby: loss is
//     bounded by the unacked WAL tail, which the drain made empty,
//   - the dead primary restarts believing it is primary (epoch 1), is
//     fenced by the promoted peer's higher epoch, demotes to standby and
//     catches back up via snapshot + run fetch,
//   - clients bound to the old primary are redirected and keep updating,
//   - after healing, the position oracle holds for all objects and a
//     whole-area range query is complete and non-partial.
func TestFailoverSoak(t *testing.T) {
	const (
		dropRate    = 0.2
		callTimeout = 200 * time.Millisecond
		queryTO     = 500 * time.Millisecond
		cooldown    = 150 * time.Millisecond
		healthEvery = 100 * time.Millisecond
		shards      = 4
	)

	reg := metrics.NewRegistry()
	// Setup (deployment, registrations) runs lossless; the 20% loss is
	// switched on for the kill/failover/healing window and back off for
	// the final full-population oracle, keeping the soak's wall-clock
	// spent on the failure path instead of on retried setup traffic.
	net := transport.NewInproc(transport.InprocOptions{
		Seed:             11,
		SweepInterval:    10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  cooldown,
		Metrics:          reg,
	})
	defer net.Close()

	dir := t.TempDir()
	walDir := func(id string) string { return filepath.Join(dir, strings.ReplaceAll(id, "/", "_")) }
	// The per-shard memtable budget is floored at 4 KiB regardless of
	// MemtableBytes, so flushes need real volume: the victim's quarter is
	// seeded with enough filler objects below to push every shard past
	// the floor and keep runs shipping.
	tierCfg := func() *store.TierConfig {
		return &store.TierConfig{MemtableBytes: 1, MaxRuns: 3}
	}
	standbyOf := func(id string) string { return id + "~s" }

	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1500, 1500),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}
	base := server.Options{
		CallTimeout:     callTimeout,
		QueryTimeout:    queryTO,
		JanitorInterval: 20 * time.Millisecond,
	}
	leafOpts := func(id string, standby bool) (server.Options, error) {
		wal, err := store.OpenShardedWAL(walDir(id), shards)
		if err != nil {
			return server.Options{}, err
		}
		o := base
		o.SightingWAL = wal
		o.Tiering = tierCfg()
		if standby {
			o.ReplPeer = strings.TrimSuffix(id, "~s")
			o.ReplStandby = true
		} else {
			o.ReplPeer = standbyOf(id)
		}
		return o, nil
	}
	dep, err := hierarchy.DeployWith(net, spec, base, func(cfg store.ConfigRecord, o server.Options) (server.Options, error) {
		if cfg.IsLeaf() {
			return leafOpts(cfg.ID, false)
		}
		// The root supervises every leaf pair.
		o.Replicas = map[string]string{}
		o.ReplHealthInterval = healthEvery
		return o, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	rootArea := core.AreaFromRect(spec.RootArea)
	root := dep.Servers[dep.Root()]

	// The standbys live outside the tree: same service area and parent as
	// their primary, but not in the root's child list — queries only reach
	// one after a failover rebind.
	configFor := func(id msg.NodeID) store.ConfigRecord {
		for _, cfg := range dep.Configs {
			if msg.NodeID(cfg.ID) == id {
				return cfg
			}
		}
		t.Fatalf("no config for %s", id)
		return store.ConfigRecord{}
	}
	standbys := map[msg.NodeID]*server.Server{}
	for _, leaf := range dep.Leaves() {
		cfg := configFor(leaf)
		cfg.ID = standbyOf(cfg.ID)
		opts, oerr := leafOpts(cfg.ID, true)
		if oerr != nil {
			t.Fatal(oerr)
		}
		srv, serr := server.New(cfg, rootArea, net, opts)
		if serr != nil {
			t.Fatal(serr)
		}
		standbys[leaf] = srv
		defer srv.Close()
	}
	// DeployWith started the root before the standbys existed; its monitor
	// snapshot of Replicas was empty, so restart the root with the pairs
	// filled in. (A real deployment starts standbys first.)
	rootCfg := configFor(dep.Root())
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}
	rootOpts := base
	rootOpts.Replicas = map[string]string{}
	for _, leaf := range dep.Leaves() {
		rootOpts.Replicas[string(leaf)] = standbyOf(string(leaf))
	}
	rootOpts.ReplHealthInterval = healthEvery
	root, err = server.New(rootCfg, rootArea, net, rootOpts)
	if err != nil {
		t.Fatal(err)
	}
	dep.Servers[dep.Root()] = root
	defer root.Close()

	// One client and one object per quarter; o0 lives on the leaf that
	// will be killed.
	retry := transport.RetryPolicy{
		MaxAttempts:   10,
		BaseBackoff:   20 * time.Millisecond,
		MaxBackoff:    150 * time.Millisecond,
		PerTryTimeout: 800 * time.Millisecond,
	}
	positions := map[string]geo.Point{
		"o0": geo.Pt(100, 100),
		"o1": geo.Pt(1200, 100),
		"o2": geo.Pt(100, 1200),
		"o3": geo.Pt(1200, 1200),
	}
	clients := map[string]*client.Client{}
	objects := map[string]*client.TrackedObject{}
	for oid, p := range positions {
		entry, ok := dep.LeafFor(p)
		if !ok {
			t.Fatalf("no leaf for %v", p)
		}
		c, cerr := client.New(net, msg.NodeID("owner-"+oid), entry, client.Options{
			Timeout: 15 * time.Second,
			Retry:   retry,
		})
		if cerr != nil {
			t.Fatal(cerr)
		}
		defer c.Close()
		obj, rerr := c.Register(soakCtx(t), sightingAt(oid, p), 10, 50, 3)
		if rerr != nil {
			t.Fatalf("register %s: %v", oid, rerr)
		}
		clients[oid] = c
		objects[oid] = obj
	}
	update := func(oid string, p geo.Point) {
		t.Helper()
		if err := objects[oid].Update(soakCtx(t), sightingAt(oid, p)); err != nil {
			t.Fatalf("update %s: %v", oid, err)
		}
		positions[oid] = p
	}

	victim := msg.NodeID("r.0")
	heir := standbys[victim]
	primary := dep.Servers[victim]

	// Seed the victim's quarter with a filler population big enough that
	// every sighting shard outgrows the floored memtable budget: the
	// janitor flushes runs and ships them while the stream keeps flowing.
	// The fillers double as the bounded-loss oracle — every one of them
	// is acked and drained before the kill, so every one must survive it.
	const fillers = 120
	fillPos := func(i int) geo.Point {
		return geo.Pt(float64(20+(i*13)%700), float64(20+(i*31)%700))
	}
	fillID := func(i int) core.OID { return core.OID(fmt.Sprintf("f%03d", i)) }
	fillClient, err := client.New(net, "owner-fill", victim, client.Options{
		Timeout: 15 * time.Second,
		Retry:   retry,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fillClient.Close()
	for i := 0; i < fillers; i++ {
		if _, rerr := fillClient.Register(soakCtx(t), sightingAt(string(fillID(i)), fillPos(i)), 10, 50, 3); rerr != nil {
			t.Fatalf("register filler %d: %v", i, rerr)
		}
	}
	for i := 0; i < 40; i++ {
		update("o0", geo.Pt(float64(50+i%600), float64(50+(i*7)%600)))
	}
	waitSoak(t, "victim to flush runs under churn", func() bool {
		return primary.Metrics().Gauge("sighting_runs").Value() > 0
	})
	waitSoak(t, "standby to install shipped runs", func() bool {
		return heir.Metrics().Counter("repl_runs_fetched").Value() > 0
	})

	// Drain the tail so "bounded loss = unacked WAL tail" means zero for
	// everything confirmed so far. The tee into the replication queue is
	// asynchronous (it rides the WAL writer's drain), so queue gauges
	// can read empty before the last update ever entered it; the only
	// honest barrier is the standby itself serving the final position.
	probe, err := net.Attach("probe", func(ctx context.Context, from msg.NodeID, m msg.Message) (msg.Message, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	final := geo.Pt(321, 123)
	update("o0", final)
	waitSoak(t, "standby to hold the last acked position before the kill", func() bool {
		// o0's shard stream draining says nothing about the fillers'
		// shards or the visitor stream: require the whole mirror.
		if heir.SightingCount() != primary.SightingCount() ||
			heir.VisitorCount() != primary.VisitorCount() {
			return false
		}
		pctx, pcancel := context.WithTimeout(context.Background(), time.Second)
		defer pcancel()
		res, perr := probe.Call(pctx, heir.ID(), msg.PosQueryDirect{OID: "o0"})
		if perr != nil {
			return false
		}
		pres, ok := res.(msg.PosQueryRes)
		return ok && pres.Found && pres.LD.Pos == final
	})

	// Kill the primary mid-flush, under 20% datagram loss: more churn is
	// in flight when the node goes dark (updates to it start timing out;
	// the kill races the janitor's flush loop by design), and from here
	// through healing every probe, promotion, redirect and query rides
	// the lossy network.
	net.SetDropRate(dropRate)
	net.SetNodeDown(victim, true)

	// The root's health probes fail, the failover fires, and the heir
	// answers queries for the acked state. A posquery from another
	// quarter follows root → rebound child, so its success proves both
	// the promotion and the forwarding rebind.
	waitSoak(t, "root to promote the standby", func() bool {
		return root.Metrics().Counter("repl_failovers").Value() > 0
	})
	waitSoak(t, "promoted standby to serve the last acked position", func() bool {
		ld, qerr := clients["o1"].PosQuery(soakCtx(t), "o0")
		return qerr == nil && ld.Pos == final
	})
	if got := heir.Metrics().Gauge("repl_role").Value(); got != 1 {
		t.Fatalf("heir repl_role = %d after failover, want 1 (primary)", got)
	}

	// Crash the victim for real and restart it from its own WAL + runs,
	// still configured as a primary (it never learned of the takeover).
	// Its epoch-1 streams must be fenced by the heir, demoting it to
	// standby, after which it catches up from the heir's snapshot.
	net.SetNodeDown(victim, false)
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	reopts, err := leafOpts(string(victim), false)
	if err != nil {
		t.Fatal(err)
	}
	revived, err := server.New(configFor(victim), rootArea, net, reopts)
	if err != nil {
		t.Fatal(err)
	}
	dep.Servers[victim] = revived
	// The repl_role gauge starts at its zero value until the first
	// janitor tick, so ask the server itself: the DiagRes role flips to
	// standby only after the fence actually demoted it.
	waitSoak(t, "revived primary to be fenced into standby", func() bool {
		pctx, pcancel := context.WithTimeout(context.Background(), time.Second)
		defer pcancel()
		res, perr := probe.Call(pctx, revived.ID(), msg.DiagReq{})
		if perr != nil {
			return false
		}
		d, ok := res.(msg.DiagRes)
		return ok && d.Repl != nil && d.Repl.Role == "standby"
	})

	// The o0 client still points at the old primary: its next update is
	// redirected to the heir (one Moved reply rebinds the handle, the
	// retried update lands), and writes keep flowing through the new
	// primary back to the demoted one.
	healed := geo.Pt(222, 333)
	update("o0", healed) // redirect: rebinds the handle, not yet applied
	update("o0", healed) // lands on the heir
	waitSoak(t, "demoted primary to mirror post-failover writes", func() bool {
		ld, qerr := clients["o1"].PosQuery(soakCtx(t), "o0")
		return qerr == nil && ld.Pos == healed
	})

	// The lossy fault window must actually have exercised the retry
	// machinery before it ends.
	if reg.Counter("wire_retries").Value() == 0 {
		t.Error("wire_retries = 0, the fault window exercised nothing")
	}
	net.SetDropRate(0)

	// Full-population oracle after healing: every object at its last
	// confirmed position, and a whole-area range query complete and
	// non-partial.
	for oid := range positions {
		update(oid, positions[oid].Add(geo.Pt(3, 3)))
	}
	for oid, want := range positions {
		oracleBy := time.Now().Add(15 * time.Second)
		for {
			ld, qerr := clients["o3"].PosQuery(soakCtx(t), core.OID(oid))
			if qerr == nil {
				if ld.Pos != want {
					t.Errorf("final position of %s = %v, want %v", oid, ld.Pos, want)
				}
				break
			}
			if !errors.Is(qerr, core.ErrUnavailable) {
				t.Fatalf("final posquery %s: %v", oid, qerr)
			}
			if time.Now().After(oracleBy) {
				t.Fatalf("final posquery %s still unavailable after healing", oid)
			}
		}
	}
	// Bounded loss, spelled out: every filler was acked and the queue
	// was drained before the kill, so the promoted (and since demoted)
	// pair must still serve each one at its registration position.
	for i := 0; i < fillers; i++ {
		want := fillPos(i)
		oracleBy := time.Now().Add(15 * time.Second)
		for {
			ld, qerr := clients["o3"].PosQuery(soakCtx(t), fillID(i))
			if qerr == nil {
				if ld.Pos != want {
					t.Errorf("filler %s position = %v, want %v", fillID(i), ld.Pos, want)
				}
				break
			}
			if !errors.Is(qerr, core.ErrUnavailable) {
				t.Fatalf("filler posquery %s: %v", fillID(i), qerr)
			}
			if time.Now().After(oracleBy) {
				t.Fatalf("filler posquery %s still unavailable after healing", fillID(i))
			}
		}
	}
	wholeArea := core.AreaFromRect(geo.R(0, 0, 1500, 1500))
	waitSoak(t, "whole-area query to be complete and non-partial", func() bool {
		res, qerr := clients["o1"].RangeQueryFull(soakCtx(t), wholeArea, 100, 0.5)
		return qerr == nil && !res.Partial && len(res.Objs) == len(positions)+fillers
	})

	// Exactly one failover may have fired: the probe retries must keep
	// 20% loss from reading as dead primaries.
	if got := root.Metrics().Counter("repl_failovers").Value(); got != 1 {
		t.Errorf("repl_failovers = %d, want exactly 1 (spurious failover under loss)", got)
	}
}

// waitSoak polls cond with a soak-scale deadline.
func waitSoak(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
