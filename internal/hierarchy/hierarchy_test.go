package hierarchy

import (
	"math/rand"
	"strings"
	"testing"

	"locsvc/internal/geo"
	"locsvc/internal/server"
	"locsvc/internal/transport"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{RootArea: geo.R(0, 0, 100, 100), Levels: []Level{{2, 2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (Spec{}).Validate(); err == nil {
		t.Error("empty root area accepted")
	}
	bad := Spec{RootArea: geo.R(0, 0, 1, 1), Levels: []Level{{0, 2}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-row level accepted")
	}
}

func TestNumServers(t *testing.T) {
	tests := []struct {
		levels []Level
		want   int
	}{
		{nil, 1},
		{[]Level{{2, 2}}, 5},          // the paper's testbed: root + 4
		{[]Level{{2, 2}, {2, 2}}, 21}, // + 16 leaves
		{[]Level{{1, 3}}, 4},
		{[]Level{{3, 3}, {2, 1}}, 1 + 9 + 18},
	}
	for _, tt := range tests {
		spec := Spec{RootArea: geo.R(0, 0, 100, 100), Levels: tt.levels}
		if got := spec.NumServers(); got != tt.want {
			t.Errorf("NumServers(%v) = %d, want %d", tt.levels, got, tt.want)
		}
	}
}

func TestBuildStructure(t *testing.T) {
	spec := Spec{RootArea: geo.R(0, 0, 1500, 1500), Levels: []Level{{2, 2}}}
	configs, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 5 {
		t.Fatalf("built %d configs", len(configs))
	}
	root := configs[0]
	if root.ID != "r" || !root.IsRoot() || root.IsLeaf() {
		t.Errorf("root = %+v", root)
	}
	if len(root.Children) != 4 {
		t.Fatalf("root children = %d", len(root.Children))
	}
	for _, cfg := range configs[1:] {
		if cfg.Parent != "r" || !cfg.IsLeaf() {
			t.Errorf("leaf %+v", cfg)
		}
		if !strings.HasPrefix(cfg.ID, "r.") {
			t.Errorf("leaf id %q", cfg.ID)
		}
		if cfg.SA.Size() != 1500*1500/4 {
			t.Errorf("leaf %s area %v", cfg.ID, cfg.SA.Size())
		}
	}
}

func TestBuildDeepIDs(t *testing.T) {
	spec := Spec{RootArea: geo.R(0, 0, 800, 800), Levels: []Level{{2, 2}, {2, 2}}}
	configs, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]bool{}
	for _, c := range configs {
		byID[c.ID] = true
	}
	for _, want := range []string{"r", "r.0", "r.3", "r.0.0", "r.3.3", "r.2.1"} {
		if !byID[want] {
			t.Errorf("missing server %s", want)
		}
	}
	// Every leaf's parent must exist and list it as a child.
	parents := map[string]map[string]bool{}
	for _, c := range configs {
		kids := map[string]bool{}
		for _, ch := range c.Children {
			kids[ch.ID] = true
		}
		parents[c.ID] = kids
	}
	for _, c := range configs[1:] {
		if !parents[c.Parent][c.ID] {
			t.Errorf("%s not listed as child of %s", c.ID, c.Parent)
		}
	}
}

func TestDeployAndLeafFor(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()
	spec := Spec{RootArea: geo.R(0, 0, 1000, 1000), Levels: []Level{{2, 2}}}
	dep, err := Deploy(net, spec, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	if got := len(dep.Servers); got != 5 {
		t.Fatalf("deployed %d servers", got)
	}
	if got := dep.Leaves(); len(got) != 4 {
		t.Fatalf("leaves = %v", got)
	}
	if dep.Root() != "r" {
		t.Errorf("root = %s", dep.Root())
	}

	tests := []struct {
		p    geo.Point
		want string
	}{
		{geo.Pt(100, 100), "r.0"},
		{geo.Pt(900, 100), "r.1"},
		{geo.Pt(100, 900), "r.2"},
		{geo.Pt(900, 900), "r.3"},
		{geo.Pt(1000, 1000), "r.3"}, // outer corner
	}
	for _, tt := range tests {
		got, ok := dep.LeafFor(tt.p)
		if !ok || string(got) != tt.want {
			t.Errorf("LeafFor(%v) = %v/%v, want %v", tt.p, got, ok, tt.want)
		}
	}
	if _, ok := dep.LeafFor(geo.Pt(-5, 0)); ok {
		t.Error("LeafFor outside root area succeeded")
	}

	// Every interior point maps to exactly one leaf.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		if _, ok := dep.LeafFor(p); !ok {
			t.Fatalf("no leaf for %v", p)
		}
	}

	srv, ok := dep.Server("r.2")
	if !ok || !srv.IsLeaf() {
		t.Errorf("Server(r.2) = %v, %v", srv, ok)
	}
}

func TestDeploySingleServer(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()
	dep, err := Deploy(net, Spec{RootArea: geo.R(0, 0, 100, 100)}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if len(dep.Servers) != 1 {
		t.Fatalf("servers = %d", len(dep.Servers))
	}
	leaf, ok := dep.LeafFor(geo.Pt(50, 50))
	if !ok || leaf != "r" {
		t.Errorf("LeafFor = %v (root must be its own leaf)", leaf)
	}
}

func TestDeployInvalidSpec(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()
	if _, err := Deploy(net, Spec{}, server.Options{}); err == nil {
		t.Error("invalid spec deployed")
	}
}

func TestLevelFanout(t *testing.T) {
	if got := (Level{Rows: 3, Cols: 2}).Fanout(); got != 6 {
		t.Errorf("Fanout = %d", got)
	}
}
