// Package hierarchy constructs location-server trees: it partitions a root
// service area into a regular grid per level (the paper's prototype divides
// a square area into quarters), produces the configuration records of every
// server, and deploys the resulting tree onto a transport network.
//
// Server ids are path labels: the root is "r", its children "r.0", "r.1",
// …, grandchildren "r.0.0" and so on, which keeps parent/child relations
// readable in logs and tests.
package hierarchy

import (
	"fmt"
	"strconv"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

// Level describes the fan-out of one hierarchy level as a rows × cols grid
// split of each service area on the level above.
type Level struct {
	Rows int
	Cols int
}

// Fanout returns the number of children each server on this level's parent
// gets.
func (l Level) Fanout() int { return l.Rows * l.Cols }

// Spec describes a hierarchy: the root service area and the grid split
// applied at every level. An empty Levels slice yields a single-server
// deployment (root == leaf).
type Spec struct {
	RootArea geo.Rect
	Levels   []Level
	// RootPartitions > 1 replaces the single root server with that many
	// partition servers sharing the root service area; visitor records
	// are partitioned by object-id hash across them (Section 4's
	// HLR-style partitioning for the root level). Zero or one keeps a
	// single root.
	RootPartitions int
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.RootArea.Empty() {
		return fmt.Errorf("hierarchy: empty root area")
	}
	for i, l := range s.Levels {
		if l.Rows <= 0 || l.Cols <= 0 {
			return fmt.Errorf("hierarchy: level %d has grid %dx%d", i, l.Rows, l.Cols)
		}
	}
	if s.RootPartitions < 0 {
		return fmt.Errorf("hierarchy: negative root partitions")
	}
	if s.RootPartitions > 1 && len(s.Levels) == 0 {
		return fmt.Errorf("hierarchy: root partitioning needs at least one level of children")
	}
	return nil
}

// NumServers returns the total number of servers the spec produces.
func (s Spec) NumServers() int {
	total, levelCount := 1, 1
	if s.RootPartitions > 1 {
		total = s.RootPartitions
	}
	for _, l := range s.Levels {
		levelCount *= l.Fanout()
		total += levelCount
	}
	return total
}

// Build produces the configuration records for every server in the tree,
// parents before children.
func Build(spec Spec) ([]store.ConfigRecord, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var out []store.ConfigRecord
	build("r", "", spec.RootArea, spec.Levels, &out)
	if spec.RootPartitions > 1 {
		out = partitionRoot(out, spec.RootPartitions)
	}
	// Validate every record: children must tile their parent.
	for _, c := range out {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("hierarchy: built invalid config: %w", err)
		}
	}
	return out, nil
}

// partitionRoot replaces the root record with n identical partition servers
// ("r#0" … "r#n-1") and points the root's children at the whole group.
func partitionRoot(configs []store.ConfigRecord, n int) []store.ConfigRecord {
	root := configs[0]
	group := make([]string, n)
	for i := range group {
		group[i] = fmt.Sprintf("r#%d", i)
	}
	out := make([]store.ConfigRecord, 0, len(configs)+n-1)
	for i := 0; i < n; i++ {
		part := root
		part.ID = group[i]
		out = append(out, part)
	}
	for _, cfg := range configs[1:] {
		if cfg.Parent == root.ID {
			cfg.Parent = group[0]
			cfg.ParentGroup = group
		}
		out = append(out, cfg)
	}
	return out
}

// build appends the record for one server and recurses into its children.
func build(id, parent string, area geo.Rect, levels []Level, out *[]store.ConfigRecord) {
	rec := store.ConfigRecord{
		ID:     id,
		SA:     core.AreaFromRect(area),
		Parent: parent,
	}
	if len(levels) > 0 {
		cells := area.SplitGrid(levels[0].Rows, levels[0].Cols)
		rec.Children = make([]store.ChildRecord, len(cells))
		for i, cell := range cells {
			childID := id + "." + strconv.Itoa(i)
			rec.Children[i] = store.ChildRecord{ID: childID, SA: core.AreaFromRect(cell)}
		}
	}
	*out = append(*out, rec)
	if len(levels) > 0 {
		cells := area.SplitGrid(levels[0].Rows, levels[0].Cols)
		for i, cell := range cells {
			build(id+"."+strconv.Itoa(i), id, cell, levels[1:], out)
		}
	}
}

// Deployment is a running location-server tree on one network.
type Deployment struct {
	Spec    Spec
	Configs []store.ConfigRecord
	Servers map[msg.NodeID]*server.Server

	leaves []store.ConfigRecord
}

// Deploy builds the tree for spec and starts one Server per config on the
// network. opts apply to every server; use DeployWith to vary options per
// server (per-leaf WALs, recovery scenarios).
func Deploy(network transport.Network, spec Spec, opts server.Options) (*Deployment, error) {
	return DeployWith(network, spec, opts, nil)
}

// DeployWith is Deploy with a per-server options hook: customize, when
// non-nil, receives each server's config record plus the shared base
// options and returns the options that server starts with — the seam for
// per-leaf concerns such as visitor WALs, per-shard sighting WALs, and
// per-leaf shard policy (a hot downtown leaf can start with more shards,
// or get its own AutoShard bounds, while quiet leaves stay single-lock).
// An error from customize aborts the deployment.
func DeployWith(network transport.Network, spec Spec, opts server.Options, customize func(cfg store.ConfigRecord, base server.Options) (server.Options, error)) (*Deployment, error) {
	configs, err := Build(spec)
	if err != nil {
		return nil, err
	}
	rootArea := core.AreaFromRect(spec.RootArea)
	d := &Deployment{
		Spec:    spec,
		Configs: configs,
		Servers: make(map[msg.NodeID]*server.Server, len(configs)),
	}
	for _, cfg := range configs {
		srvOpts := opts
		if customize != nil {
			srvOpts, err = customize(cfg, opts)
			if err != nil {
				d.Close()
				return nil, fmt.Errorf("hierarchy: configuring %s: %w", cfg.ID, err)
			}
		}
		srv, err := server.New(cfg, rootArea, network, srvOpts)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("hierarchy: deploying %s: %w", cfg.ID, err)
		}
		d.Servers[srv.ID()] = srv
		if cfg.IsLeaf() {
			d.leaves = append(d.leaves, cfg)
		}
	}
	return d, nil
}

// Root returns the first root server's id ("r", or "r#0" when the root is
// partitioned).
func (d *Deployment) Root() msg.NodeID { return d.Roots()[0] }

// Roots returns all root server ids: a single entry unless the root level
// is partitioned by object id.
func (d *Deployment) Roots() []msg.NodeID {
	var out []msg.NodeID
	for _, cfg := range d.Configs {
		if cfg.IsRoot() {
			out = append(out, msg.NodeID(cfg.ID))
		}
	}
	return out
}

// RootVisitorCount sums the visitor records across all root partitions —
// the number of objects with complete forwarding paths.
func (d *Deployment) RootVisitorCount() int {
	total := 0
	for _, r := range d.Roots() {
		if srv, ok := d.Servers[r]; ok {
			total += srv.VisitorCount()
		}
	}
	return total
}

// Leaves returns the ids of all leaf servers in build order.
func (d *Deployment) Leaves() []msg.NodeID {
	out := make([]msg.NodeID, len(d.leaves))
	for i, cfg := range d.leaves {
		out[i] = msg.NodeID(cfg.ID)
	}
	return out
}

// LeafFor returns the leaf server responsible for position p — the entry
// server a client at p would use (the paper assumes a lookup service such
// as Jini provides this mapping; the deployment directory plays that role).
func (d *Deployment) LeafFor(p geo.Point) (msg.NodeID, bool) {
	for _, cfg := range d.leaves {
		if cfg.SA.Bounds().Contains(p) && cfg.SA.Contains(p) {
			return msg.NodeID(cfg.ID), true
		}
	}
	// Fall back to closed containment for boundary points.
	for _, cfg := range d.leaves {
		if cfg.SA.Contains(p) {
			return msg.NodeID(cfg.ID), true
		}
	}
	return "", false
}

// Server returns the server instance with the given id.
func (d *Deployment) Server(id msg.NodeID) (*server.Server, bool) {
	s, ok := d.Servers[id]
	return s, ok
}

// Close shuts every server down.
func (d *Deployment) Close() error {
	var first error
	for _, srv := range d.Servers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
