// Package object simulates tracked objects: a mobility model drives the
// true position, a location sensor adds bounded noise, and an update
// protocol decides when a new sighting is transmitted to the object's
// agent. The three protocols — time-based, distance-based (the paper's
// choice, Section 6.2) and dead reckoning — are the ones compared in the
// paper's reference [15]; ablation A4 regenerates that comparison.
package object

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/mobility"
)

// Policy decides whether a new sighting must be transmitted.
type Policy interface {
	// ShouldSend is consulted once per simulation tick with the current
	// true position, the simulated time and the offered accuracy.
	ShouldSend(pos geo.Point, now time.Time, offeredAcc float64) bool
	// Sent informs the policy that an update with the given position was
	// transmitted at now.
	Sent(pos geo.Point, now time.Time)
	// EstimatedPos returns the position the location service believes the
	// object to be at, assuming the server applies the same estimation
	// rule as the object (last reported position for distance- and
	// time-based protocols, velocity extrapolation for dead reckoning,
	// as in the DOMINO policies the paper cites).
	EstimatedPos(now time.Time) geo.Point
	// Name identifies the policy in benchmark tables.
	Name() string
}

// DistanceBased transmits when the position deviates from the last
// transmitted one by more than a threshold — the paper's update protocol:
// the threshold is the offered accuracy (Section 6.2). A Threshold of zero
// uses the offered accuracy.
type DistanceBased struct {
	Threshold float64
	last      geo.Point
	sentOnce  bool
}

var _ Policy = (*DistanceBased)(nil)

// ShouldSend implements Policy.
func (p *DistanceBased) ShouldSend(pos geo.Point, _ time.Time, offeredAcc float64) bool {
	if !p.sentOnce {
		return true
	}
	th := p.Threshold
	if th <= 0 {
		th = offeredAcc
	}
	return pos.Dist(p.last) > th
}

// Sent implements Policy.
func (p *DistanceBased) Sent(pos geo.Point, _ time.Time) {
	p.last = pos
	p.sentOnce = true
}

// EstimatedPos implements Policy.
func (p *DistanceBased) EstimatedPos(time.Time) geo.Point { return p.last }

// Name implements Policy.
func (p *DistanceBased) Name() string { return "distance" }

// TimeBased transmits every Interval regardless of movement.
type TimeBased struct {
	Interval time.Duration
	next     time.Time
	started  bool
	last     geo.Point
}

var _ Policy = (*TimeBased)(nil)

// ShouldSend implements Policy.
func (p *TimeBased) ShouldSend(_ geo.Point, now time.Time, _ float64) bool {
	return !p.started || !now.Before(p.next)
}

// Sent implements Policy.
func (p *TimeBased) Sent(pos geo.Point, now time.Time) {
	p.started = true
	p.last = pos
	p.next = now.Add(p.Interval)
}

// EstimatedPos implements Policy.
func (p *TimeBased) EstimatedPos(time.Time) geo.Point { return p.last }

// Name implements Policy.
func (p *TimeBased) Name() string { return "time" }

// DeadReckoning predicts the position by extrapolating the velocity at the
// last update and transmits only when the true position deviates from the
// prediction by more than the threshold. The server side would extrapolate
// identically; for the protocol comparison only the message count and the
// deviation bound matter.
type DeadReckoning struct {
	Threshold float64

	last     geo.Point
	lastT    time.Time
	velocity geo.Point
	prev     geo.Point
	prevT    time.Time
	sentOnce bool
}

var _ Policy = (*DeadReckoning)(nil)

// ShouldSend implements Policy.
func (p *DeadReckoning) ShouldSend(pos geo.Point, now time.Time, offeredAcc float64) bool {
	if !p.sentOnce {
		return true
	}
	th := p.Threshold
	if th <= 0 {
		th = offeredAcc
	}
	dt := now.Sub(p.lastT).Seconds()
	predicted := p.last.Add(p.velocity.Scale(dt))
	return pos.Dist(predicted) > th
}

// Sent implements Policy.
func (p *DeadReckoning) Sent(pos geo.Point, now time.Time) {
	if p.sentOnce {
		dt := now.Sub(p.prevT).Seconds()
		if dt > 0 {
			p.velocity = pos.Sub(p.prev).Scale(1 / dt)
		}
	}
	p.prev, p.prevT = pos, now
	p.last, p.lastT = pos, now
	p.sentOnce = true
}

// EstimatedPos implements Policy.
func (p *DeadReckoning) EstimatedPos(now time.Time) geo.Point {
	dt := now.Sub(p.lastT).Seconds()
	return p.last.Add(p.velocity.Scale(dt))
}

// Name implements Policy.
func (p *DeadReckoning) Name() string { return "dead-reckoning" }

// ---------------------------------------------------------------------------

// Sim drives one tracked object: mobility model → sensor noise → update
// policy → location service.
type Sim struct {
	oid     core.OID
	model   mobility.Model
	policy  Policy
	tracked *client.TrackedObject
	sensAcc float64
	rng     *rand.Rand

	now time.Time

	// Stats.
	ticks   int
	updates int
	maxDev  float64
	sumDev  float64
}

// NewSim registers the object with the service and returns the simulator.
// The registration uses the model's current position.
func NewSim(ctx context.Context, c *client.Client, oid core.OID, model mobility.Model,
	policy Policy, sensAcc, desAcc, minAcc, maxSpeed float64, seed int64, start time.Time) (*Sim, error) {
	s := core.Sighting{OID: oid, T: start, Pos: model.Pos(), SensAcc: sensAcc}
	tracked, err := c.Register(ctx, s, desAcc, minAcc, maxSpeed)
	if err != nil {
		return nil, fmt.Errorf("object: registering %s: %w", oid, err)
	}
	sim := &Sim{
		oid:     oid,
		model:   model,
		policy:  policy,
		tracked: tracked,
		sensAcc: sensAcc,
		rng:     rand.New(rand.NewSource(seed)),
		now:     start,
	}
	sim.policy.Sent(model.Pos(), start)
	return sim, nil
}

// Tracked returns the underlying tracked-object handle.
func (s *Sim) Tracked() *client.TrackedObject { return s.tracked }

// TruePos returns the object's actual position.
func (s *Sim) TruePos() geo.Point { return s.model.Pos() }

// Now returns the simulated clock.
func (s *Sim) Now() time.Time { return s.now }

// Tick advances simulated time by dt, moves the object and transmits an
// update if the policy demands one. It reports whether an update was sent.
func (s *Sim) Tick(ctx context.Context, dt time.Duration) (bool, error) {
	s.now = s.now.Add(dt)
	truePos := s.model.Step(dt.Seconds())
	s.ticks++

	// Track the deviation between the service's estimate of the position
	// and the truth — the achieved accuracy of the protocol.
	dev := truePos.Dist(s.policy.EstimatedPos(s.now))
	s.sumDev += dev
	if dev > s.maxDev {
		s.maxDev = dev
	}

	if !s.policy.ShouldSend(truePos, s.now, s.tracked.OfferedAcc()) {
		return false, nil
	}
	sensed := s.sense(truePos)
	sight := core.Sighting{OID: s.oid, T: s.now, Pos: sensed, SensAcc: s.sensAcc}
	if err := s.tracked.Update(ctx, sight); err != nil {
		return false, fmt.Errorf("object: updating %s: %w", s.oid, err)
	}
	s.policy.Sent(sensed, s.now)
	s.updates++
	return true, nil
}

// sense adds bounded sensor noise to the true position.
func (s *Sim) sense(p geo.Point) geo.Point {
	if s.sensAcc <= 0 {
		return p
	}
	r := s.rng.Float64() * s.sensAcc
	a := s.rng.Float64() * 2 * math.Pi
	return geo.Pt(p.X+r*math.Cos(a), p.Y+r*math.Sin(a))
}

// Stats summarizes the protocol's behaviour so far.
type Stats struct {
	Ticks   int
	Updates int
	// MeanDev and MaxDev measure the deviation between the service's
	// stored position and the object's true position.
	MeanDev float64
	MaxDev  float64
	Policy  string
}

// Stats returns the accumulated statistics.
func (s *Sim) Stats() Stats {
	st := Stats{Ticks: s.ticks, Updates: s.updates, MaxDev: s.maxDev, Policy: s.policy.Name()}
	if s.ticks > 0 {
		st.MeanDev = s.sumDev / float64(s.ticks)
	}
	return st
}
