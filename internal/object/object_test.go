package object_test

import (
	"context"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/mobility"
	"locsvc/internal/msg"
	"locsvc/internal/object"
	"locsvc/internal/server"
	"locsvc/internal/transport"
)

func deployLS(t *testing.T) (*transport.Inproc, *hierarchy.Deployment) {
	t.Helper()
	net := transport.NewInproc(transport.InprocOptions{})
	dep, err := hierarchy.Deploy(net, hierarchy.Spec{
		RootArea: geo.R(0, 0, 1000, 1000),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}, server.Options{AchievableAcc: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close(); net.Close() })
	return net, dep
}

func newSim(t *testing.T, net *transport.Inproc, dep *hierarchy.Deployment, id string,
	model mobility.Model, pol object.Policy) *object.Sim {
	t.Helper()
	entry, ok := dep.LeafFor(model.Pos())
	if !ok {
		t.Fatalf("no leaf for %v", model.Pos())
	}
	c, err := client.New(net, msg.NodeID("node-"+transportNodeID(id)), entry, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	start := time.Date(2026, 6, 12, 8, 0, 0, 0, time.UTC)
	sim, err := object.NewSim(context.Background(), c, coreOID(id), model, pol, 5, 25, 100, 20, 1, start)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestDistanceBasedPolicySendsOnlyOnMovement(t *testing.T) {
	net, dep := deployLS(t)
	sim := newSim(t, net, dep, "still", mobility.NewStationary(geo.Pt(100, 100)), &object.DistanceBased{})
	for i := 0; i < 50; i++ {
		sent, err := sim.Tick(context.Background(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if sent {
			t.Fatal("stationary object transmitted an update")
		}
	}
	st := sim.Stats()
	if st.Updates != 0 || st.Ticks != 50 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDistanceBasedPolicySendsWhenExceedingAccuracy(t *testing.T) {
	net, dep := deployLS(t)
	// Fast walker: 30 m/s against 25 m offered accuracy → roughly one
	// update per tick.
	model := mobility.NewRandomWaypoint(geo.R(50, 50, 950, 950), 30, 30, 0, 2)
	sim := newSim(t, net, dep, "fast", model, &object.DistanceBased{})
	for i := 0; i < 60; i++ {
		if _, err := sim.Tick(context.Background(), time.Second); err != nil {
			t.Fatal(err)
		}
	}
	st := sim.Stats()
	if st.Updates < 30 {
		t.Errorf("fast object sent only %d updates in 60 ticks", st.Updates)
	}
	// Deviation bound: between ticks the object can exceed the offered
	// accuracy by at most one tick of movement plus sensor noise.
	if st.MaxDev > 25+30+5 {
		t.Errorf("max deviation %v exceeds protocol bound", st.MaxDev)
	}
}

func TestTimeBasedPolicy(t *testing.T) {
	net, dep := deployLS(t)
	model := mobility.NewStationary(geo.Pt(100, 100))
	sim := newSim(t, net, dep, "timed", model, &object.TimeBased{Interval: 5 * time.Second})
	sent := 0
	for i := 0; i < 50; i++ {
		ok, err := sim.Tick(context.Background(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			sent++
		}
	}
	// 50 s / 5 s = 10 updates (±1 for phase).
	if sent < 9 || sent > 11 {
		t.Errorf("time-based policy sent %d updates in 50 s", sent)
	}
}

func TestDeadReckoningSuppressesLinearMotion(t *testing.T) {
	net, dep := deployLS(t)
	// Straight-line motion at constant speed: after two updates the
	// velocity estimate is exact and dead reckoning goes quiet, while
	// distance-based keeps sending.
	lin := &linearModel{pos: geo.Pt(100, 500), v: geo.Pt(20, 0)}
	simDR := newSim(t, net, dep, "dr", lin, &object.DeadReckoning{})

	lin2 := &linearModel{pos: geo.Pt(100, 400), v: geo.Pt(20, 0)}
	simDB := newSim(t, net, dep, "db", lin2, &object.DistanceBased{})

	for i := 0; i < 40; i++ {
		if _, err := simDR.Tick(context.Background(), time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := simDB.Tick(context.Background(), time.Second); err != nil {
			t.Fatal(err)
		}
	}
	dr, db := simDR.Stats(), simDB.Stats()
	if dr.Updates >= db.Updates {
		t.Errorf("dead reckoning (%d updates) not better than distance-based (%d) on linear motion",
			dr.Updates, db.Updates)
	}
	if dr.Policy != "dead-reckoning" || db.Policy != "distance" {
		t.Errorf("policy names: %q, %q", dr.Policy, db.Policy)
	}
}

func TestSimHandoverTransparent(t *testing.T) {
	net, dep := deployLS(t)
	// March straight east across the leaf boundary at x=500.
	lin := &linearModel{pos: geo.Pt(450, 250), v: geo.Pt(25, 0)}
	sim := newSim(t, net, dep, "mover", lin, &object.DistanceBased{})
	for i := 0; i < 10; i++ {
		if _, err := sim.Tick(context.Background(), time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if got := sim.Tracked().Agent(); got != "r.1" {
		t.Errorf("agent after crossing = %s, want r.1", got)
	}
	if sim.TruePos().X <= 500 {
		t.Fatalf("object did not cross: %v", sim.TruePos())
	}
}

// linearModel moves at constant velocity (not in the mobility package: the
// tests need perfectly predictable motion).
type linearModel struct {
	pos geo.Point
	v   geo.Point
}

func (m *linearModel) Pos() geo.Point { return m.pos }
func (m *linearModel) Step(dt float64) geo.Point {
	m.pos = m.pos.Add(m.v.Scale(dt))
	return m.pos
}

// transportNodeID keeps node-id construction in one place.
func transportNodeID(id string) string { return id }

// coreOID converts a plain string to an object id.
func coreOID(id string) core.OID { return core.OID(id) }
