package wire

import (
	"sync/atomic"

	"locsvc/internal/core"
	"locsvc/internal/msg"
)

// Hot identifier strings — node ids and object ids — recur on nearly every
// datagram: an update-heavy workload decodes the same OID and agent id
// thousands of times per second. Interning them collapses those copies
// into one shared string per distinct identifier, cutting decode
// allocations roughly in half on the update path (pinned by the
// allocation regression test).
//
// The table is a fixed-size, lock-free, lossy cache: each slot holds one
// string behind an atomic pointer. A hash collision simply overwrites the
// slot — correctness never depends on a hit, only allocation count does —
// so there is no growth, no eviction scan and no lock on the decode path.

const (
	// internSlots sizes the table; a power of two so the hash folds with a
	// mask. 512 slots comfortably cover the paper's workloads (hundreds of
	// objects, tens of servers).
	internSlots = 512
	// internMaxLen bounds interned string length: identifiers are short,
	// and long strings would pin memory in the table for little gain.
	internMaxLen = 64
)

var internTab [internSlots]atomic.Pointer[string]

// internBytes returns b as a string, reusing the interned copy when one is
// cached. The comparison `*p == string(b)` does not allocate — the
// compiler recognizes the conversion-for-comparison idiom — so a hit costs
// one atomic load and one memcmp.
func internBytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		return string(b)
	}
	h := fnv32(b) & (internSlots - 1)
	if p := internTab[h].Load(); p != nil && *p == string(b) {
		return *p
	}
	s := string(b)
	internTab[h].Store(&s)
	return s
}

// fnv32 is the FNV-1a hash, inlined to keep the decode path free of
// hash.Hash32 allocations.
func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// internedStr reads a length-prefixed string like reader.str, but through
// the intern table.
func (r *reader) internedStr() string {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return ""
	}
	return internBytes(r.take(n))
}

// nodeID reads an interned node identifier.
func (r *reader) nodeID() msg.NodeID { return msg.NodeID(r.internedStr()) }

// oid reads an interned object identifier.
func (r *reader) oid() core.OID { return core.OID(r.internedStr()) }
