package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"locsvc/internal/msg"
)

// This file preserves the original encoding/gob wire format the binary
// codec replaced. It exists for two reasons: the round-trip property test
// cross-checks the new codec's semantics against it, and the codec
// benchmarks keep it as the before/after baseline (BENCH_wire.json). It
// is not used by any transport; delete it when the comparison stops being
// interesting.

// registerOnce guards the gob type registrations.
var registerOnce sync.Once

// registerTypes registers every concrete message type carried inside an
// Envelope's Msg interface field.
func registerTypes() {
	gob.Register(msg.RegisterReq{})
	gob.Register(msg.RegisterRes{})
	gob.Register(msg.RegisterFailed{})
	gob.Register(msg.CreatePath{})
	gob.Register(msg.RemovePath{})
	gob.Register(msg.UpdateReq{})
	gob.Register(msg.UpdateRes{})
	gob.Register(msg.HandoverReq{})
	gob.Register(msg.HandoverRes{})
	gob.Register(msg.DeregisterReq{})
	gob.Register(msg.DeregisterRes{})
	gob.Register(msg.ChangeAccReq{})
	gob.Register(msg.ChangeAccRes{})
	gob.Register(msg.NotifyAvailAcc{})
	gob.Register(msg.RequestUpdate{})
	gob.Register(msg.PosQueryReq{})
	gob.Register(msg.PosQueryDirect{})
	gob.Register(msg.PosQueryRes{})
	gob.Register(msg.PosQueryFwd{})
	gob.Register(msg.RangeQueryReq{})
	gob.Register(msg.RangeQueryFwd{})
	gob.Register(msg.RangeQuerySubRes{})
	gob.Register(msg.RangeQueryRes{})
	gob.Register(msg.NeighborQueryReq{})
	gob.Register(msg.NeighborQueryRes{})
	gob.Register(msg.EventSubscribe{})
	gob.Register(msg.EventUnsubscribe{})
	gob.Register(msg.EventCount{})
	gob.Register(msg.EventNotify{})
	gob.Register(msg.DiagReq{})
	gob.Register(msg.DiagRes{})
	gob.Register(msg.Ack{})
	gob.Register(msg.ErrorRes{})
	gob.Register(msg.ReplAppend{})
	gob.Register(msg.ReplAck{})
	gob.Register(msg.RunFetch{})
	gob.Register(msg.RunFetchRes{})
	gob.Register(msg.Promote{})
	gob.Register(msg.PromoteRes{})
}

// EncodeGob serializes an envelope in the retired gob format.
func EncodeGob(env msg.Envelope) ([]byte, error) {
	registerOnce.Do(registerTypes)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		return nil, fmt.Errorf("wire: gob-encoding envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeGob deserializes a gob-format envelope.
func DecodeGob(data []byte) (msg.Envelope, error) {
	registerOnce.Do(registerTypes)
	var env msg.Envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return msg.Envelope{}, fmt.Errorf("wire: gob-decoding envelope: %w", err)
	}
	return env, nil
}
