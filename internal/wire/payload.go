package wire

import (
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// This file holds the explicit per-message encode/decode pairs — one case
// per entry of the msg tag registry, fields in struct declaration order,
// no reflection. Adding a message type means adding its tag in
// msg/tags.go, one case in appendPayload and one in decodePayload; the
// registry-coverage round-trip test fails until all three exist.

// appendPayload appends m's payload encoding and returns its tag; ok is
// false for unregistered types.
func appendPayload(dst []byte, m msg.Message) (_ []byte, tag msg.Tag, ok bool) {
	switch m := m.(type) {
	case msg.RegisterReq:
		dst = appendSighting(dst, m.S)
		dst = appendRegInfo(dst, m.RegInfo)
		dst = appendOrigin(dst, m.Origin)
		dst = appendInt(dst, m.Hops)
		dst = appendU64(dst, m.Seq)
		return dst, msg.TagRegisterReq, true
	case msg.RegisterRes:
		dst = appendU64(dst, m.OpID)
		dst = appendString(dst, string(m.Agent))
		dst = appendLeafInfo(dst, m.AgentInfo)
		dst = appendF64(dst, m.OfferedAcc)
		dst = appendInt(dst, m.Hops)
		return dst, msg.TagRegisterRes, true
	case msg.RegisterFailed:
		dst = appendU64(dst, m.OpID)
		dst = appendString(dst, string(m.Server))
		dst = appendF64(dst, m.Achievable)
		return dst, msg.TagRegisterFailed, true
	case msg.CreatePath:
		dst = appendString(dst, string(m.OID))
		dst = appendLeafInfo(dst, m.Leaf)
		dst = appendTime(dst, m.SightingT)
		return dst, msg.TagCreatePath, true
	case msg.RemovePath:
		dst = appendString(dst, string(m.OID))
		dst = appendTime(dst, m.SightingT)
		dst = appendBool(dst, m.HasNewPos)
		dst = appendPoint(dst, m.NewPos)
		return dst, msg.TagRemovePath, true
	case msg.UpdateReq:
		dst = appendSighting(dst, m.S)
		dst = appendU64(dst, m.Seq)
		return dst, msg.TagUpdateReq, true
	case msg.UpdateRes:
		dst = appendBool(dst, m.Moved)
		dst = appendString(dst, string(m.NewAgent))
		dst = appendLeafInfo(dst, m.AgentInfo)
		dst = appendF64(dst, m.OfferedAcc)
		return dst, msg.TagUpdateRes, true
	case msg.HandoverReq:
		dst = appendSighting(dst, m.S)
		dst = appendRegInfo(dst, m.RegInfo)
		dst = appendString(dst, string(m.OldAgent))
		dst = appendBool(dst, m.Direct)
		dst = appendInt(dst, m.Hops)
		return dst, msg.TagHandoverReq, true
	case msg.HandoverRes:
		dst = appendString(dst, string(m.NewAgent))
		dst = appendLeafInfo(dst, m.AgentInfo)
		dst = appendF64(dst, m.OfferedAcc)
		dst = appendInt(dst, m.Hops)
		return dst, msg.TagHandoverRes, true
	case msg.DeregisterReq:
		dst = appendString(dst, string(m.OID))
		return dst, msg.TagDeregisterReq, true
	case msg.DeregisterRes:
		return dst, msg.TagDeregisterRes, true
	case msg.ChangeAccReq:
		dst = appendString(dst, string(m.OID))
		dst = appendF64(dst, m.DesAcc)
		dst = appendF64(dst, m.MinAcc)
		return dst, msg.TagChangeAccReq, true
	case msg.ChangeAccRes:
		dst = appendBool(dst, m.OK)
		dst = appendF64(dst, m.OfferedAcc)
		return dst, msg.TagChangeAccRes, true
	case msg.NotifyAvailAcc:
		dst = appendString(dst, string(m.OID))
		dst = appendF64(dst, m.OfferedAcc)
		return dst, msg.TagNotifyAvailAcc, true
	case msg.RequestUpdate:
		dst = appendString(dst, string(m.OID))
		return dst, msg.TagRequestUpdate, true
	case msg.PosQueryReq:
		dst = appendString(dst, string(m.OID))
		dst = appendF64(dst, m.AccBound)
		return dst, msg.TagPosQueryReq, true
	case msg.PosQueryDirect:
		dst = appendString(dst, string(m.OID))
		return dst, msg.TagPosQueryDirect, true
	case msg.PosQueryRes:
		dst = appendU64(dst, m.OpID)
		dst = appendBool(dst, m.Found)
		dst = appendLD(dst, m.LD)
		dst = appendString(dst, string(m.Agent))
		dst = appendLeafInfo(dst, m.AgentInfo)
		dst = appendF64(dst, m.MaxSpeed)
		dst = appendInt(dst, m.Hops)
		dst = appendBool(dst, m.Partial)
		return dst, msg.TagPosQueryRes, true
	case msg.PosQueryFwd:
		dst = appendString(dst, string(m.OID))
		dst = appendOrigin(dst, m.Origin)
		dst = appendInt(dst, m.Hops)
		return dst, msg.TagPosQueryFwd, true
	case msg.RangeQueryReq:
		dst = appendArea(dst, m.Area)
		dst = appendF64(dst, m.ReqAcc)
		dst = appendF64(dst, m.ReqOverlap)
		return dst, msg.TagRangeQueryReq, true
	case msg.RangeQueryFwd:
		dst = appendArea(dst, m.Area)
		dst = appendF64(dst, m.ReqAcc)
		dst = appendF64(dst, m.ReqOverlap)
		dst = appendOrigin(dst, m.Origin)
		dst = appendInt(dst, m.Hops)
		return dst, msg.TagRangeQueryFwd, true
	case msg.RangeQuerySubRes:
		dst = appendU64(dst, m.OpID)
		dst = appendEntries(dst, m.Objs)
		dst = appendF64(dst, m.CoveredSize)
		dst = appendLeafInfo(dst, m.Leaf)
		dst = appendInt(dst, m.Hops)
		dst = appendNodeIDs(dst, m.Unreachable)
		dst = appendF64(dst, m.UnreachableSize)
		return dst, msg.TagRangeQuerySubRes, true
	case msg.RangeQueryRes:
		dst = appendEntries(dst, m.Objs)
		dst = appendInt(dst, m.Servers)
		dst = appendInt(dst, m.Hops)
		dst = appendBool(dst, m.Partial)
		dst = appendNodeIDs(dst, m.Unreachable)
		return dst, msg.TagRangeQueryRes, true
	case msg.NeighborQueryReq:
		dst = appendPoint(dst, m.P)
		dst = appendF64(dst, m.ReqAcc)
		dst = appendF64(dst, m.NearQual)
		return dst, msg.TagNeighborQueryReq, true
	case msg.NeighborQueryRes:
		dst = appendBool(dst, m.Found)
		dst = appendEntry(dst, m.Nearest)
		dst = appendEntries(dst, m.Near)
		dst = appendF64(dst, m.GuaranteedMinDist)
		dst = appendBool(dst, m.Partial)
		dst = appendNodeIDs(dst, m.Unreachable)
		return dst, msg.TagNeighborQueryRes, true
	case msg.EventSubscribe:
		dst = appendString(dst, m.SubID)
		dst = appendInt(dst, int(m.Kind))
		dst = appendArea(dst, m.Area)
		dst = appendF64(dst, m.ReqAcc)
		dst = appendInt(dst, m.Threshold)
		dst = appendF64(dst, m.Distance)
		dst = appendString(dst, string(m.Coordinator))
		dst = appendString(dst, string(m.Subscriber))
		return dst, msg.TagEventSubscribe, true
	case msg.EventUnsubscribe:
		dst = appendString(dst, m.SubID)
		dst = appendArea(dst, m.Area)
		return dst, msg.TagEventUnsubscribe, true
	case msg.EventCount:
		dst = appendString(dst, m.SubID)
		dst = appendString(dst, string(m.Leaf))
		dst = appendInt(dst, m.Count)
		dst = appendU64(dst, m.Seq)
		return dst, msg.TagEventCount, true
	case msg.EventNotify:
		dst = appendString(dst, m.SubID)
		dst = appendBool(dst, m.Fired)
		dst = appendInt(dst, m.Total)
		dst = appendOIDs(dst, m.Objs)
		dst = appendU64(dst, m.Seq)
		return dst, msg.TagEventNotify, true
	case msg.DiagReq:
		return dst, msg.TagDiagReq, true
	case msg.DiagRes:
		dst = appendString(dst, string(m.Server))
		dst = appendBool(dst, m.IsLeaf)
		dst = appendInt(dst, m.Visitors)
		dst = appendInt(dst, m.Sightings)
		dst = appendShardDiags(dst, m.Shards)
		dst = appendU64(dst, m.Epoch)
		dst = appendTierDiag(dst, m.Tier)
		dst = appendReplDiag(dst, m.Repl)
		dst = appendI64(dst, m.PipelineOps)
		dst = appendI64(dst, m.PipelineHandoffs)
		dst = appendInt(dst, m.EventSubs)
		dst = appendInt(dst, m.EventCoordSubs)
		dst = appendString(dst, m.Metrics)
		return dst, msg.TagDiagRes, true
	case msg.Ack:
		return dst, msg.TagAck, true
	case msg.ErrorRes:
		dst = appendString(dst, m.Code)
		dst = appendString(dst, m.Text)
		return dst, msg.TagErrorRes, true
	case msg.ReplAppend:
		dst = appendU64(dst, m.Epoch)
		dst = appendInt(dst, m.Stream)
		dst = appendU64(dst, m.FirstSeq)
		dst = appendReplRecords(dst, m.Recs)
		return dst, msg.TagReplAppend, true
	case msg.ReplAck:
		dst = appendU64(dst, m.Epoch)
		dst = appendInt(dst, m.Stream)
		dst = appendU64(dst, m.NextSeq)
		dst = appendBool(dst, m.Fenced)
		dst = appendBool(dst, m.NeedSync)
		return dst, msg.TagReplAck, true
	case msg.RunFetch:
		dst = appendInt(dst, m.Shard)
		dst = appendString(dst, m.Name)
		dst = appendI64(dst, m.Off)
		dst = appendInt(dst, m.MaxBytes)
		return dst, msg.TagRunFetch, true
	case msg.RunFetchRes:
		dst = appendI64(dst, m.Size)
		dst = appendBytes(dst, m.Data)
		dst = appendBool(dst, m.EOF)
		return dst, msg.TagRunFetchRes, true
	case msg.Promote:
		dst = appendU64(dst, m.Epoch)
		return dst, msg.TagPromote, true
	case msg.PromoteRes:
		dst = appendU64(dst, m.Epoch)
		return dst, msg.TagPromoteRes, true
	}
	return dst, msg.TagInvalid, false
}

// decodePayload decodes the payload identified by tag; known is false for
// tags outside the registry. Field errors surface through the reader's
// sticky error, checked by Decode after the trailing-bytes check.
func decodePayload(r *reader, tag msg.Tag) (m msg.Message, known bool) {
	switch tag {
	case msg.TagRegisterReq:
		return msg.RegisterReq{
			S:       r.sighting(),
			RegInfo: r.regInfo(),
			Origin:  r.origin(),
			Hops:    r.integer(),
			Seq:     r.u64(),
		}, true
	case msg.TagRegisterRes:
		return msg.RegisterRes{
			OpID:       r.u64(),
			Agent:      r.nodeID(),
			AgentInfo:  r.leafInfo(),
			OfferedAcc: r.f64(),
			Hops:       r.integer(),
		}, true
	case msg.TagRegisterFailed:
		return msg.RegisterFailed{
			OpID:       r.u64(),
			Server:     r.nodeID(),
			Achievable: r.f64(),
		}, true
	case msg.TagCreatePath:
		return msg.CreatePath{
			OID:       r.oid(),
			Leaf:      r.leafInfo(),
			SightingT: r.timestamp(),
		}, true
	case msg.TagRemovePath:
		return msg.RemovePath{
			OID:       r.oid(),
			SightingT: r.timestamp(),
			HasNewPos: r.boolean(),
			NewPos:    r.point(),
		}, true
	case msg.TagUpdateReq:
		return msg.UpdateReq{S: r.sighting(), Seq: r.u64()}, true
	case msg.TagUpdateRes:
		return msg.UpdateRes{
			Moved:      r.boolean(),
			NewAgent:   r.nodeID(),
			AgentInfo:  r.leafInfo(),
			OfferedAcc: r.f64(),
		}, true
	case msg.TagHandoverReq:
		return msg.HandoverReq{
			S:        r.sighting(),
			RegInfo:  r.regInfo(),
			OldAgent: r.nodeID(),
			Direct:   r.boolean(),
			Hops:     r.integer(),
		}, true
	case msg.TagHandoverRes:
		return msg.HandoverRes{
			NewAgent:   r.nodeID(),
			AgentInfo:  r.leafInfo(),
			OfferedAcc: r.f64(),
			Hops:       r.integer(),
		}, true
	case msg.TagDeregisterReq:
		return msg.DeregisterReq{OID: r.oid()}, true
	case msg.TagDeregisterRes:
		return msg.DeregisterRes{}, true
	case msg.TagChangeAccReq:
		return msg.ChangeAccReq{
			OID:    r.oid(),
			DesAcc: r.f64(),
			MinAcc: r.f64(),
		}, true
	case msg.TagChangeAccRes:
		return msg.ChangeAccRes{OK: r.boolean(), OfferedAcc: r.f64()}, true
	case msg.TagNotifyAvailAcc:
		return msg.NotifyAvailAcc{OID: r.oid(), OfferedAcc: r.f64()}, true
	case msg.TagRequestUpdate:
		return msg.RequestUpdate{OID: r.oid()}, true
	case msg.TagPosQueryReq:
		return msg.PosQueryReq{OID: r.oid(), AccBound: r.f64()}, true
	case msg.TagPosQueryDirect:
		return msg.PosQueryDirect{OID: r.oid()}, true
	case msg.TagPosQueryRes:
		return msg.PosQueryRes{
			OpID:      r.u64(),
			Found:     r.boolean(),
			LD:        r.ld(),
			Agent:     r.nodeID(),
			AgentInfo: r.leafInfo(),
			MaxSpeed:  r.f64(),
			Hops:      r.integer(),
			Partial:   r.boolean(),
		}, true
	case msg.TagPosQueryFwd:
		return msg.PosQueryFwd{
			OID:    r.oid(),
			Origin: r.origin(),
			Hops:   r.integer(),
		}, true
	case msg.TagRangeQueryReq:
		return msg.RangeQueryReq{
			Area:       r.area(),
			ReqAcc:     r.f64(),
			ReqOverlap: r.f64(),
		}, true
	case msg.TagRangeQueryFwd:
		return msg.RangeQueryFwd{
			Area:       r.area(),
			ReqAcc:     r.f64(),
			ReqOverlap: r.f64(),
			Origin:     r.origin(),
			Hops:       r.integer(),
		}, true
	case msg.TagRangeQuerySubRes:
		return msg.RangeQuerySubRes{
			OpID:            r.u64(),
			Objs:            r.entries(),
			CoveredSize:     r.f64(),
			Leaf:            r.leafInfo(),
			Hops:            r.integer(),
			Unreachable:     r.nodeIDs(),
			UnreachableSize: r.f64(),
		}, true
	case msg.TagRangeQueryRes:
		return msg.RangeQueryRes{
			Objs:        r.entries(),
			Servers:     r.integer(),
			Hops:        r.integer(),
			Partial:     r.boolean(),
			Unreachable: r.nodeIDs(),
		}, true
	case msg.TagNeighborQueryReq:
		return msg.NeighborQueryReq{
			P:        r.point(),
			ReqAcc:   r.f64(),
			NearQual: r.f64(),
		}, true
	case msg.TagNeighborQueryRes:
		return msg.NeighborQueryRes{
			Found:             r.boolean(),
			Nearest:           r.entry(),
			Near:              r.entries(),
			GuaranteedMinDist: r.f64(),
			Partial:           r.boolean(),
			Unreachable:       r.nodeIDs(),
		}, true
	case msg.TagEventSubscribe:
		return msg.EventSubscribe{
			SubID:       r.str(),
			Kind:        msg.EventKind(r.integer()),
			Area:        r.area(),
			ReqAcc:      r.f64(),
			Threshold:   r.integer(),
			Distance:    r.f64(),
			Coordinator: r.nodeID(),
			Subscriber:  r.nodeID(),
		}, true
	case msg.TagEventUnsubscribe:
		return msg.EventUnsubscribe{SubID: r.str(), Area: r.area()}, true
	case msg.TagEventCount:
		return msg.EventCount{
			SubID: r.str(),
			Leaf:  r.nodeID(),
			Count: r.integer(),
			Seq:   r.u64(),
		}, true
	case msg.TagEventNotify:
		return msg.EventNotify{
			SubID: r.str(),
			Fired: r.boolean(),
			Total: r.integer(),
			Objs:  r.oids(),
			Seq:   r.u64(),
		}, true
	case msg.TagDiagReq:
		return msg.DiagReq{}, true
	case msg.TagDiagRes:
		return msg.DiagRes{
			Server:           r.nodeID(),
			IsLeaf:           r.boolean(),
			Visitors:         r.integer(),
			Sightings:        r.integer(),
			Shards:           r.shardDiags(),
			Epoch:            r.u64(),
			Tier:             r.tierDiag(),
			Repl:             r.replDiag(),
			PipelineOps:      r.i64(),
			PipelineHandoffs: r.i64(),
			EventSubs:        r.integer(),
			EventCoordSubs:   r.integer(),
			Metrics:          r.str(),
		}, true
	case msg.TagAck:
		return msg.Ack{}, true
	case msg.TagErrorRes:
		return msg.ErrorRes{Code: r.str(), Text: r.str()}, true
	case msg.TagReplAppend:
		return msg.ReplAppend{
			Epoch:    r.u64(),
			Stream:   r.integer(),
			FirstSeq: r.u64(),
			Recs:     r.replRecords(),
		}, true
	case msg.TagReplAck:
		return msg.ReplAck{
			Epoch:    r.u64(),
			Stream:   r.integer(),
			NextSeq:  r.u64(),
			Fenced:   r.boolean(),
			NeedSync: r.boolean(),
		}, true
	case msg.TagRunFetch:
		return msg.RunFetch{
			Shard:    r.integer(),
			Name:     r.str(),
			Off:      r.i64(),
			MaxBytes: r.integer(),
		}, true
	case msg.TagRunFetchRes:
		return msg.RunFetchRes{
			Size: r.i64(),
			Data: r.bytes(),
			EOF:  r.boolean(),
		}, true
	case msg.TagPromote:
		return msg.Promote{Epoch: r.u64()}, true
	case msg.TagPromoteRes:
		return msg.PromoteRes{Epoch: r.u64()}, true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Composite fields shared between messages. Encoders and decoders come in
// pairs; both sides list fields in declaration order.

func appendPoint(dst []byte, p geo.Point) []byte {
	dst = appendF64(dst, p.X)
	return appendF64(dst, p.Y)
}

func (r *reader) point() geo.Point {
	return geo.Point{X: r.f64(), Y: r.f64()}
}

func appendSighting(dst []byte, s core.Sighting) []byte {
	dst = appendString(dst, string(s.OID))
	dst = appendTime(dst, s.T)
	dst = appendPoint(dst, s.Pos)
	return appendF64(dst, s.SensAcc)
}

func (r *reader) sighting() core.Sighting {
	return core.Sighting{
		OID:     r.oid(),
		T:       r.timestamp(),
		Pos:     r.point(),
		SensAcc: r.f64(),
	}
}

func appendRegInfo(dst []byte, ri core.RegInfo) []byte {
	dst = appendString(dst, ri.Registrant)
	dst = appendF64(dst, ri.DesAcc)
	dst = appendF64(dst, ri.MinAcc)
	return appendF64(dst, ri.MaxSpeed)
}

func (r *reader) regInfo() core.RegInfo {
	return core.RegInfo{
		Registrant: r.str(),
		DesAcc:     r.f64(),
		MinAcc:     r.f64(),
		MaxSpeed:   r.f64(),
	}
}

func appendLD(dst []byte, ld core.LocationDescriptor) []byte {
	dst = appendPoint(dst, ld.Pos)
	return appendF64(dst, ld.Acc)
}

func (r *reader) ld() core.LocationDescriptor {
	return core.LocationDescriptor{Pos: r.point(), Acc: r.f64()}
}

func appendEntry(dst []byte, e core.Entry) []byte {
	dst = appendString(dst, string(e.OID))
	return appendLD(dst, e.LD)
}

func (r *reader) entry() core.Entry {
	return core.Entry{OID: r.oid(), LD: r.ld()}
}

// entryMinSize is the smallest wire footprint of one core.Entry: an empty
// OID length byte plus three float64s. Length guards use it to reject
// impossible element counts before allocating.
const entryMinSize = 1 + 3*8

func appendEntries(dst []byte, es []core.Entry) []byte {
	dst = appendUvarint(dst, uint64(len(es)))
	for _, e := range es {
		dst = appendEntry(dst, e)
	}
	return dst
}

func (r *reader) entries() []core.Entry {
	n := r.length(entryMinSize)
	if r.err != nil || n == 0 {
		return nil
	}
	es := make([]core.Entry, n)
	for i := range es {
		es[i] = r.entry()
	}
	return es
}

func appendOIDs(dst []byte, ids []core.OID) []byte {
	dst = appendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = appendString(dst, string(id))
	}
	return dst
}

func (r *reader) oids() []core.OID {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return nil
	}
	ids := make([]core.OID, n)
	for i := range ids {
		ids[i] = r.oid()
	}
	return ids
}

func appendNodeIDs(dst []byte, ids []msg.NodeID) []byte {
	dst = appendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = appendString(dst, string(id))
	}
	return dst
}

func (r *reader) nodeIDs() []msg.NodeID {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return nil
	}
	ids := make([]msg.NodeID, n)
	for i := range ids {
		ids[i] = r.nodeID()
	}
	return ids
}

func appendArea(dst []byte, a core.Area) []byte {
	dst = appendUvarint(dst, uint64(len(a.Vertices)))
	for _, p := range a.Vertices {
		dst = appendPoint(dst, p)
	}
	return dst
}

func (r *reader) area() core.Area {
	n := r.length(16)
	if r.err != nil || n == 0 {
		return core.Area{}
	}
	poly := make(geo.Polygon, n)
	for i := range poly {
		poly[i] = r.point()
	}
	return core.Area{Vertices: poly}
}

func appendOrigin(dst []byte, o msg.Origin) []byte {
	dst = appendString(dst, string(o.Node))
	return appendU64(dst, o.OpID)
}

func (r *reader) origin() msg.Origin {
	return msg.Origin{Node: r.nodeID(), OpID: r.u64()}
}

func appendLeafInfo(dst []byte, li msg.LeafInfo) []byte {
	dst = appendString(dst, string(li.ID))
	return appendArea(dst, li.Area)
}

func (r *reader) leafInfo() msg.LeafInfo {
	return msg.LeafInfo{ID: r.nodeID(), Area: r.area()}
}

// shardDiagSize is the fixed wire footprint of one msg.ShardDiag.
const shardDiagSize = 3 * 8

func appendShardDiags(dst []byte, sd []msg.ShardDiag) []byte {
	dst = appendUvarint(dst, uint64(len(sd)))
	for _, d := range sd {
		dst = appendInt(dst, d.Len)
		dst = appendI64(dst, d.Ops)
		dst = appendI64(dst, d.Contended)
	}
	return dst
}

func (r *reader) shardDiags() []msg.ShardDiag {
	n := r.length(shardDiagSize)
	if r.err != nil || n == 0 {
		return nil
	}
	sd := make([]msg.ShardDiag, n)
	for i := range sd {
		sd[i] = msg.ShardDiag{Len: r.integer(), Ops: r.i64(), Contended: r.i64()}
	}
	return sd
}

func appendTierDiag(dst []byte, t *msg.TierDiag) []byte {
	dst = appendBool(dst, t != nil)
	if t == nil {
		return dst
	}
	dst = appendBool(dst, t.Warm)
	dst = appendI64(dst, t.MemtableBytes)
	dst = appendI64(dst, t.RunBytes)
	dst = appendI64(dst, t.MetaBytes)
	dst = appendInt(dst, t.Runs)
	dst = appendI64(dst, t.DiskRecords)
	dst = appendI64(dst, t.DiskLive)
	dst = appendI64(dst, t.Flushes)
	dst = appendI64(dst, t.Compactions)
	dst = appendI64(dst, t.BloomHits)
	dst = appendI64(dst, t.BloomMisses)
	return appendInt(dst, t.Backlog)
}

func appendReplDiag(dst []byte, d *msg.ReplDiag) []byte {
	dst = appendBool(dst, d != nil)
	if d == nil {
		return dst
	}
	dst = appendString(dst, d.Role)
	dst = appendString(dst, string(d.Peer))
	dst = appendU64(dst, d.Epoch)
	dst = appendI64(dst, d.Pending)
	dst = appendI64(dst, d.Acked)
	dst = appendI64(dst, d.Fenced)
	dst = appendI64(dst, d.RunsInstalled)
	return appendI64(dst, d.Resyncs)
}

func (r *reader) replDiag() *msg.ReplDiag {
	if !r.boolean() || r.err != nil {
		return nil
	}
	return &msg.ReplDiag{
		Role:          r.str(),
		Peer:          r.nodeID(),
		Epoch:         r.u64(),
		Pending:       r.i64(),
		Acked:         r.i64(),
		Fenced:        r.i64(),
		RunsInstalled: r.i64(),
		Resyncs:       r.i64(),
	}
}

// sightingMinSize is the smallest wire footprint of one core.Sighting:
// an empty-OID length byte, a timestamp (8+4), a point (2×8) and one
// float64.
const sightingMinSize = 1 + 12 + 16 + 8

func appendSightings(dst []byte, ss []core.Sighting) []byte {
	dst = appendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendSighting(dst, s)
	}
	return dst
}

func (r *reader) sightings() []core.Sighting {
	n := r.length(sightingMinSize)
	if r.err != nil || n == 0 {
		return nil
	}
	ss := make([]core.Sighting, n)
	for i := range ss {
		ss[i] = r.sighting()
	}
	return ss
}

func appendStrings(dst []byte, ss []string) []byte {
	dst = appendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendString(dst, s)
	}
	return dst
}

func (r *reader) strings() []string {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = r.str()
	}
	return ss
}

// visitorStateMinSize is the smallest wire footprint of one
// msg.VisitorState: two empty-string length bytes, two float64-bearing
// composites (OfferedAcc + RegInfo's empty Registrant and three floats)
// and a timestamp.
const visitorStateMinSize = 1 + 1 + 8 + (1 + 3*8) + 12

func appendVisitorState(dst []byte, v msg.VisitorState) []byte {
	dst = appendString(dst, string(v.OID))
	dst = appendString(dst, v.ForwardRef)
	dst = appendF64(dst, v.OfferedAcc)
	dst = appendRegInfo(dst, v.RegInfo)
	return appendTime(dst, v.PathT)
}

func (r *reader) visitorState() msg.VisitorState {
	return msg.VisitorState{
		OID:        r.oid(),
		ForwardRef: r.str(),
		OfferedAcc: r.f64(),
		RegInfo:    r.regInfo(),
		PathT:      r.timestamp(),
	}
}

func appendVisitorStates(dst []byte, vs []msg.VisitorState) []byte {
	dst = appendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendVisitorState(dst, v)
	}
	return dst
}

func (r *reader) visitorStates() []msg.VisitorState {
	n := r.length(visitorStateMinSize)
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]msg.VisitorState, n)
	for i := range vs {
		vs[i] = r.visitorState()
	}
	return vs
}

// replRecordMinSize is the smallest wire footprint of one msg.ReplRecord:
// the op byte, four empty-slice length bytes, an empty OID, an empty
// visitor state, NextSeq and ClearMem.
const replRecordMinSize = 1 + 1 + 1 + visitorStateMinSize + 1 + 1 + 1 + 8 + 1

func appendReplRecords(dst []byte, recs []msg.ReplRecord) []byte {
	dst = appendUvarint(dst, uint64(len(recs)))
	for i := range recs {
		rec := &recs[i]
		dst = append(dst, byte(rec.Op))
		dst = appendSightings(dst, rec.Sightings)
		dst = appendString(dst, string(rec.OID))
		dst = appendVisitorState(dst, rec.Visitor)
		dst = appendVisitorStates(dst, rec.Visitors)
		dst = appendOIDs(dst, rec.Dead)
		dst = appendStrings(dst, rec.Runs)
		dst = appendU64(dst, rec.NextSeq)
		dst = appendBool(dst, rec.ClearMem)
	}
	return dst
}

func (r *reader) replRecords() []msg.ReplRecord {
	n := r.length(replRecordMinSize)
	if r.err != nil || n == 0 {
		return nil
	}
	recs := make([]msg.ReplRecord, n)
	for i := range recs {
		recs[i] = msg.ReplRecord{
			Op:        msg.ReplOp(r.u8()),
			Sightings: r.sightings(),
			OID:       r.oid(),
			Visitor:   r.visitorState(),
			Visitors:  r.visitorStates(),
			Dead:      r.oids(),
			Runs:      r.strings(),
			NextSeq:   r.u64(),
			ClearMem:  r.boolean(),
		}
	}
	return recs
}

func (r *reader) tierDiag() *msg.TierDiag {
	if !r.boolean() || r.err != nil {
		return nil
	}
	return &msg.TierDiag{
		Warm:          r.boolean(),
		MemtableBytes: r.i64(),
		RunBytes:      r.i64(),
		MetaBytes:     r.i64(),
		Runs:          r.integer(),
		DiskRecords:   r.i64(),
		DiskLive:      r.i64(),
		Flushes:       r.i64(),
		Compactions:   r.i64(),
		BloomHits:     r.i64(),
		BloomMisses:   r.i64(),
		Backlog:       r.integer(),
	}
}
