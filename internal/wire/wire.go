// Package wire encodes protocol envelopes for datagram transports with a
// hand-rolled, versioned, length-delimited binary codec. It replaces the
// original encoding/gob format (kept as EncodeGob/DecodeGob for comparison
// benchmarks and cross-checking): gob re-transmits type descriptors on
// every datagram, reflects over the message structs and allocates a fresh
// encoder per envelope, all of which this codec avoids — encoding appends
// into a caller-supplied (typically pooled) buffer with zero allocations,
// and decoding reads directly out of the receive buffer with no
// reflection.
//
// # Framing
//
// A datagram carries either one envelope (the legacy frame) or a batch of
// envelopes. The legacy frame:
//
//	offset 0  version  uint8   — wireVersion; receivers reject others
//	offset 1  tag      uint8   — msg.Tag of the payload type
//	          From     string  — sending node id
//	          CorrID   uint64  — call correlation id, 0 for one-way
//	          flags    uint8   — bit 0: Reply; bits 1-7 must be zero
//	          payload  ...     — per-message fields, in struct order
//
// Trailing bytes after the payload are an error: a datagram either parses
// exactly or is dropped.
//
// # Batch frame
//
// A batch coalesces N ≥ 2 envelopes into one datagram:
//
//	offset 0  magic    uint8   — batchMagic (0xB7), distinguishes batch
//	                             from legacy frames by the first octet
//	offset 1  version  uint8   — wireVersion; receivers reject others
//	          count    uvarint — number of envelopes, at least 2
//	          N ×     (uvarint byte length, then one full legacy frame)
//
// A batch of exactly one envelope is, by rule, encoded as a plain legacy
// frame — batching is invisible on the wire until there is something to
// coalesce, so batching and non-batching peers interoperate without
// negotiation. Decoding is all-or-nothing like the legacy frame: a bad
// count, a truncated inner envelope or trailing bytes reject the whole
// datagram. 0xB7 is reserved forever as the batch magic; wireVersion must
// never be assigned that value (see the versioning rules).
//
// # Interning
//
// Node and object identifiers recur on nearly every datagram, so the
// decoder routes them through a small lock-free intern table (intern.go):
// repeated ids share one string allocation. This is a decode-side
// optimization only — it changes nothing on the wire.
//
// # Primitive encodings
//
//   - bool: one byte, 0 or 1 (other values are a decode error)
//   - int, int64, uint64: fixed 8 bytes little-endian (ints two's
//     complement)
//   - float64: IEEE 754 bits, fixed 8 bytes little-endian (NaN and ±Inf
//     round-trip bit-exactly)
//   - string: uvarint byte length, then the raw bytes
//   - slices: uvarint element count, then the elements back to back
//   - time.Time: int64 Unix seconds + 4-byte little-endian nanoseconds.
//     Timestamps travel as UTC instants — monotonic readings and zone
//     identity are not preserved (the paper assumes synchronized GPS
//     time, so only the instant matters)
//
// Composite fields (geo.Point, core.Sighting, core.Area, msg.LeafInfo, …)
// are their fields in declaration order using the primitives above; they
// add no framing of their own.
//
// # Tag table
//
// The payload tag registry lives in package msg (msg.Tag, one constant per
// message type) so that adding a message is a one-file change next to the
// type definition. Tag values are frozen forever once assigned; see the
// registry comment in msg/tags.go.
//
// # Versioning rules
//
//   - Adding a new message type: assign the next free tag in msg/tags.go
//     and add its encode/decode pair in payload.go. Old receivers drop
//     envelopes with unknown tags (a decode error), which is the normal
//     UDP loss mode — no version bump needed.
//   - Adding, removing or reordering fields of an existing message, or
//     changing a primitive encoding: bump wireVersion. Receivers reject
//     datagrams from other versions outright, so a mixed-version
//     deployment partitions cleanly instead of mis-parsing. The batch
//     frame carries the same version byte (at offset 1, after the magic)
//     and follows the same rule: batch layout changes bump wireVersion.
//   - Tags and the version byte share the first two octets forever; any
//     future self-describing format must keep them addressable.
//   - wireVersion must never be assigned batchMagic (0xB7): the first
//     octet alone distinguishes legacy frames from batch frames.
//
// # Version history
//
//   - v1: initial binary format, replacing gob (tags 1–33).
//   - v2: resilience fields. UpdateReq and RegisterReq gained a trailing
//     Seq uint64 (per-sender retry sequence number); PosQueryRes gained a
//     trailing Partial bool; RangeQuerySubRes gained trailing
//     Unreachable []NodeID + UnreachableSize float64; RangeQueryRes and
//     NeighborQueryRes gained trailing Partial bool + Unreachable
//     []NodeID. New fields append after the v1 fields in struct
//     declaration order, like any other field.
//   - v3: leaf replication. DiagRes gained Repl *ReplDiag (presence-bool
//     prefixed, like Tier) between Tier and PipelineOps; new messages
//     ReplAppend/ReplAck (tags 34/35, the seq-numbered WAL-tail stream
//     and its ack), RunFetch/RunFetchRes (36/37, chunked immutable-run
//     transfer), Promote/PromoteRes (38/39, failover). Replication
//     epochs ride inside ReplAppend/ReplAck, not the version byte: a
//     zombie primary speaks the same wire version and is fenced by the
//     epoch check in the receiver, so mixed-role confusion is an
//     application-level rejection (ReplAck.Fenced), never a parse error.
//     ReplAppend is idempotent by stream sequence number rather than the
//     dedupe window: a retried batch re-sends the same FirstSeq and the
//     receiver skips the already-applied prefix, so CallWithRetry is
//     safe on it. A promoted standby keeps its own dedupe window, which
//     starts empty: a client retry that straddles the failover may be
//     re-applied once by the new primary (last-wins sighting semantics
//     make this harmless; see the internal/server doc).
//
// # Retry idempotency
//
// The transports retry idempotent calls on timeout, so a receiver may see
// the same logical request twice (the original reply was lost, not the
// request). Two rules make that safe on this wire format:
//
//   - Requests with side effects carry a Seq drawn from one monotonic
//     per-sender counter (UpdateReq.Seq, RegisterReq.Seq — the scheme
//     EventCount.Seq introduced). Seq 0 means unstamped: the sender opted
//     out of retries and the receiver applies the request unconditionally.
//     Receivers keep a bounded, time-evicted dedupe window keyed
//     (sender, Seq) and answer a duplicate by re-sending the remembered
//     reply without re-applying.
//   - A retried attempt re-sends the SAME Seq (and, for registrations,
//     the same Origin.OpID). The sender must never reuse a Seq for a
//     different request, so a fresh counter after sender restart is safe
//     only because the receiver's window also evicts by time.
//
// Read-only queries (pos/range/neighbor/diag) carry no Seq; retrying them
// needs no dedupe. Their responses instead carry the Partial/Unreachable
// markers above so a degraded answer is distinguishable from a complete
// one.
package wire

import (
	"fmt"
	"sync"

	"locsvc/internal/msg"
)

// wireVersion is the format generation of this codec. Bump it whenever an
// existing message's field layout or a primitive encoding changes. See the
// version history in the package doc.
const wireVersion = 3

// maxPooledBuf bounds the capacity of buffers returned to the pool, so a
// rare huge envelope (an oversize range-query result rejected by the
// transport's datagram guard still gets fully encoded first) does not pin
// its buffer for the lifetime of the pool entry.
const maxPooledBuf = 1 << 20

// bufPool recycles encode buffers — the same recycled-buffer discipline as
// the WAL encoder's batch buffers. Callers Get a buffer, append an
// envelope into it, transmit, and Put it back.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// GetBuffer returns a pooled encode buffer of zero length. Pass it (or any
// other byte slice) to AppendEncode and return it with PutBuffer when the
// encoded bytes are no longer referenced.
func GetBuffer() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuffer recycles a buffer obtained from GetBuffer. Oversized buffers
// are dropped instead of pooled.
func PutBuffer(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// envelope flag bits.
const flagReply = 1 << 0

// Encode serializes an envelope into a fresh buffer. It is the
// convenience form of AppendEncode for callers without a buffer to reuse.
func Encode(env msg.Envelope) ([]byte, error) {
	return AppendEncode(nil, env)
}

// AppendEncode appends env's wire encoding to dst and returns the extended
// slice. It allocates only when dst lacks capacity; with a pooled buffer
// the steady-state cost is zero allocations. The only error is an
// unregistered payload type.
func AppendEncode(dst []byte, env msg.Envelope) ([]byte, error) {
	mark := len(dst)
	// The tag byte at mark+1 is patched after the payload type switch
	// identifies the message; this keeps encoding a single type switch.
	dst = append(dst, wireVersion, 0)
	dst = appendString(dst, string(env.From))
	dst = appendU64(dst, env.CorrID)
	var flags byte
	if env.Reply {
		flags |= flagReply
	}
	dst = append(dst, flags)
	dst, tag, ok := appendPayload(dst, env.Msg)
	if !ok {
		return dst[:mark], fmt.Errorf("wire: encoding envelope: unregistered message type %T", env.Msg)
	}
	dst[mark+1] = byte(tag)
	return dst, nil
}

// Decode deserializes an envelope. The decoded envelope shares no memory
// with data: strings and slices are copied out, so the receive buffer can
// be recycled as soon as Decode returns.
func Decode(data []byte) (msg.Envelope, error) {
	if len(data) < 2 {
		return msg.Envelope{}, fmt.Errorf("wire: decoding envelope: %d-byte datagram is shorter than the header", len(data))
	}
	if data[0] != wireVersion {
		return msg.Envelope{}, fmt.Errorf("wire: decoding envelope: unsupported wire version %d (have %d)", data[0], wireVersion)
	}
	tag := msg.Tag(data[1])
	r := reader{data: data, off: 2}
	var env msg.Envelope
	env.From = r.nodeID()
	env.CorrID = r.u64()
	flags := r.u8()
	if r.err == nil && flags&^byte(flagReply) != 0 {
		return msg.Envelope{}, fmt.Errorf("wire: decoding envelope: reserved flag bits %#x set", flags)
	}
	env.Reply = flags&flagReply != 0
	m, known := decodePayload(&r, tag)
	if !known {
		return msg.Envelope{}, fmt.Errorf("wire: decoding envelope: unknown message tag %d", byte(tag))
	}
	if r.err != nil {
		return msg.Envelope{}, fmt.Errorf("wire: decoding %s envelope: %w", tag, r.err)
	}
	if r.off != len(data) {
		return msg.Envelope{}, fmt.Errorf("wire: decoding %s envelope: %d trailing bytes", tag, len(data)-r.off)
	}
	env.Msg = m
	return env, nil
}
