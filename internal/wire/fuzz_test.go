package wire

import (
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// FuzzDecode proves the decoder total over arbitrary datagrams: malformed,
// truncated or hostile input must return an error — never panic, never
// allocate beyond the datagram's own size (the length guards cap every
// count by the remaining bytes). Anything that does decode must survive a
// re-encode/re-decode cycle, i.e. Decode's output is always encodable.
func FuzzDecode(f *testing.F) {
	seeds := []msg.Envelope{
		{From: "obj-1", CorrID: 42, Msg: msg.UpdateReq{S: core.Sighting{
			OID: "truck-7", T: time.Unix(1_700_000_000, 0).UTC(), Pos: geo.Pt(123.5, 456.25), SensAcc: 10,
		}}},
		{From: "r.0", Reply: true, CorrID: 7, Msg: msg.PosQueryRes{
			OpID: 9, Found: true, LD: core.LocationDescriptor{Pos: geo.Pt(1, 2), Acc: 3},
			Agent: "r.1", MaxSpeed: 4, Hops: 2,
		}},
		{From: "r.1", Msg: msg.RangeQuerySubRes{
			OpID:        99,
			Objs:        []core.Entry{{OID: "a", LD: core.LocationDescriptor{Pos: geo.Pt(1, 2), Acc: 3}}},
			CoveredSize: 2500,
			Leaf:        msg.LeafInfo{ID: "r.1", Area: core.AreaFromRect(geo.R(0, 0, 50, 50))},
		}},
		{From: "x", Msg: msg.EventNotify{SubID: "s", Fired: true, Total: 3, Objs: []core.OID{"a", "b"}}},
		{From: "r", Msg: msg.DiagRes{Server: "r", Shards: []msg.ShardDiag{{Len: 1, Ops: 2, Contended: 3}}, Metrics: "m = 1\n"}},
		{From: "y", CorrID: 1, Reply: true, Msg: msg.Ack{}},
		{From: "r.0", CorrID: 3, Msg: msg.ReplAppend{Epoch: 2, Stream: 1, FirstSeq: 17, Recs: []msg.ReplRecord{
			{Op: msg.ReplSightingPut, Sightings: []core.Sighting{{OID: "a", T: time.Unix(1_700_000_000, 0).UTC(), Pos: geo.Pt(1, 2), SensAcc: 3}}},
			{Op: msg.ReplRuns, Runs: []string{"run-0001-00000002.run"}, NextSeq: 3, ClearMem: true},
			{Op: msg.ReplSnapshot, Dead: []core.OID{"b"}, Runs: []string{"run-0001-00000001.run"}, NextSeq: 2},
		}}},
		{From: "r.0~s", CorrID: 3, Reply: true, Msg: msg.ReplAck{Epoch: 2, Stream: 1, NextSeq: 20}},
		{From: "r.0~s", CorrID: 4, Msg: msg.RunFetch{Shard: 1, Name: "run-0001-00000002.run", Off: 4096, MaxBytes: 65536}},
		{From: "r.0", CorrID: 4, Reply: true, Msg: msg.RunFetchRes{Size: 8192, Data: []byte{1, 2, 3}, EOF: false}},
		{From: "r", CorrID: 5, Msg: msg.Promote{}},
		{From: "r.0~s", CorrID: 5, Reply: true, Msg: msg.PromoteRes{Epoch: 3}},
	}
	for _, env := range seeds {
		data, err := Encode(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Truncations and bit flips seed the interesting failure space.
		f.Add(data[:len(data)/2])
		flipped := append([]byte{}, data...)
		flipped[len(flipped)-1] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	f.Add([]byte("not an envelope"))
	// A huge length prefix with no bytes behind it: must fail the length
	// guard, not attempt the allocation.
	f.Add([]byte{wireVersion, byte(msg.TagEventNotify), 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return // malformed input rejected: the property we want
		}
		out, err := Encode(env)
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v\nenvelope: %#v", err, env)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v\nenvelope: %#v", err, env)
		}
	})
}

// FuzzDecodeBatch extends the decoder-totality property to batch
// datagrams: any malformed batch frame — bad magic, bad version, bad
// count, truncated or corrupted envelope stream, trailing bytes — must
// error without panicking, and anything that decodes must re-encode and
// re-decode to the same number of envelopes.
func FuzzDecodeBatch(f *testing.F) {
	envs := []msg.Envelope{
		{From: "obj-1", CorrID: 42, Msg: msg.UpdateReq{S: core.Sighting{
			OID: "truck-7", T: time.Unix(1_700_000_000, 0).UTC(), Pos: geo.Pt(123.5, 456.25), SensAcc: 10,
		}}},
		{From: "r.0", Reply: true, CorrID: 7, Msg: msg.UpdateRes{Moved: true, NewAgent: "r.1", OfferedAcc: 25}},
		{From: "x", Msg: msg.EventNotify{SubID: "s", Fired: true, Total: 3, Objs: []core.OID{"a", "b"}}},
		{From: "y", CorrID: 1, Reply: true, Msg: msg.Ack{}},
	}
	for n := 1; n <= len(envs); n++ {
		data, err := EncodeBatch(envs[:n])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		flipped := append([]byte{}, data...)
		flipped[len(flipped)/2] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{batchMagic})
	f.Add([]byte{batchMagic, wireVersion})
	f.Add([]byte{batchMagic, wireVersion, 0x00})
	f.Add([]byte{batchMagic, wireVersion, 0x01})
	// Huge count with no bytes behind it: the count guard must reject it
	// before any allocation.
	f.Add([]byte{batchMagic, wireVersion, 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeBatch(data)
		if err != nil {
			return // malformed input rejected: the property we want
		}
		out, err := EncodeBatch(decoded)
		if err != nil {
			t.Fatalf("decoded batch failed to re-encode: %v\nbatch: %#v", err, decoded)
		}
		again, err := DecodeBatch(out)
		if err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v\nbatch: %#v", err, decoded)
		}
		if len(again) != len(decoded) {
			t.Fatalf("batch size changed across re-encode: %d -> %d", len(decoded), len(again))
		}
	})
}
