package wire

import (
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// FuzzDecode proves the decoder total over arbitrary datagrams: malformed,
// truncated or hostile input must return an error — never panic, never
// allocate beyond the datagram's own size (the length guards cap every
// count by the remaining bytes). Anything that does decode must survive a
// re-encode/re-decode cycle, i.e. Decode's output is always encodable.
func FuzzDecode(f *testing.F) {
	seeds := []msg.Envelope{
		{From: "obj-1", CorrID: 42, Msg: msg.UpdateReq{S: core.Sighting{
			OID: "truck-7", T: time.Unix(1_700_000_000, 0).UTC(), Pos: geo.Pt(123.5, 456.25), SensAcc: 10,
		}}},
		{From: "r.0", Reply: true, CorrID: 7, Msg: msg.PosQueryRes{
			OpID: 9, Found: true, LD: core.LocationDescriptor{Pos: geo.Pt(1, 2), Acc: 3},
			Agent: "r.1", MaxSpeed: 4, Hops: 2,
		}},
		{From: "r.1", Msg: msg.RangeQuerySubRes{
			OpID:        99,
			Objs:        []core.Entry{{OID: "a", LD: core.LocationDescriptor{Pos: geo.Pt(1, 2), Acc: 3}}},
			CoveredSize: 2500,
			Leaf:        msg.LeafInfo{ID: "r.1", Area: core.AreaFromRect(geo.R(0, 0, 50, 50))},
		}},
		{From: "x", Msg: msg.EventNotify{SubID: "s", Fired: true, Total: 3, Objs: []core.OID{"a", "b"}}},
		{From: "r", Msg: msg.DiagRes{Server: "r", Shards: []msg.ShardDiag{{Len: 1, Ops: 2, Contended: 3}}, Metrics: "m = 1\n"}},
		{From: "y", CorrID: 1, Reply: true, Msg: msg.Ack{}},
	}
	for _, env := range seeds {
		data, err := Encode(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Truncations and bit flips seed the interesting failure space.
		f.Add(data[:len(data)/2])
		flipped := append([]byte{}, data...)
		flipped[len(flipped)-1] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	f.Add([]byte("not an envelope"))
	// A huge length prefix with no bytes behind it: must fail the length
	// guard, not attempt the allocation.
	f.Add([]byte{wireVersion, byte(msg.TagEventNotify), 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return // malformed input rejected: the property we want
		}
		out, err := Encode(env)
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v\nenvelope: %#v", err, env)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v\nenvelope: %#v", err, env)
		}
	})
}
