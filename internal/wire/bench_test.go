package wire

import (
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// Benchmark envelopes: the two messages that dominate steady-state
// traffic. UpdateReq is the per-position-report request every tracked
// object sends; PosQueryRes is the standard query answer (and carries the
// LeafInfo polygon, the costliest composite field).
func benchUpdateEnvelope() msg.Envelope {
	return msg.Envelope{
		From:   "obj-node-17",
		CorrID: 421,
		Msg: msg.UpdateReq{S: core.Sighting{
			OID: "truck-7", T: time.Unix(1_700_000_000, 250_000_000).UTC(),
			Pos: geo.Pt(1234.5, 987.25), SensAcc: 10,
		}},
	}
}

func benchPosResEnvelope() msg.Envelope {
	return msg.Envelope{
		From:   "r.2",
		CorrID: 99,
		Reply:  true,
		Msg: msg.PosQueryRes{
			OpID:  7,
			Found: true,
			LD:    core.LocationDescriptor{Pos: geo.Pt(431.25, 1102.5), Acc: 12.5},
			Agent: "r.2",
			AgentInfo: msg.LeafInfo{
				ID:   "r.2",
				Area: core.AreaFromRect(geo.R(0, 750, 750, 1500)),
			},
			MaxSpeed: 15,
			Hops:     3,
		},
	}
}

func benchEnvelopes() map[string]msg.Envelope {
	return map[string]msg.Envelope{
		"UpdateReq":   benchUpdateEnvelope(),
		"PosQueryRes": benchPosResEnvelope(),
	}
}

// BenchmarkWireEncode measures the binary encoder appending into a reused
// buffer — the transport's send path. Steady state is 0 allocs/op.
func BenchmarkWireEncode(b *testing.B) {
	for name, env := range benchEnvelopes() {
		b.Run(name, func(b *testing.B) {
			buf := make([]byte, 0, 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = AppendEncode(buf[:0], env)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireDecode measures the binary decoder reading straight out of
// a receive buffer — the transport's read path. The only allocations are
// the decoded envelope's own strings, slices and interface box.
func BenchmarkWireDecode(b *testing.B) {
	for name, env := range benchEnvelopes() {
		b.Run(name, func(b *testing.B) {
			data, err := Encode(env)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireRoundTrip is encode+decode back to back: the full codec
// cost of one request or response datagram, comparable one-to-one with
// BenchmarkGobRoundTrip (the retired format, kept as the baseline).
func BenchmarkWireRoundTrip(b *testing.B) {
	for name, env := range benchEnvelopes() {
		b.Run(name, func(b *testing.B) {
			buf := make([]byte, 0, 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = AppendEncode(buf[:0], env)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Decode(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGobRoundTrip is the gob baseline the tentpole is measured
// against (≥5x target, BENCH_wire.json).
func BenchmarkGobRoundTrip(b *testing.B) {
	for name, env := range benchEnvelopes() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := EncodeGob(env)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := DecodeGob(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
