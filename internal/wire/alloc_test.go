package wire

import (
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// TestInternHitAllocatesNothing pins the intern table's contract: once an
// identifier is cached, re-interning it costs zero allocations (the
// conversion-for-comparison idiom the fast path relies on).
func TestInternHitAllocatesNothing(t *testing.T) {
	b := []byte("agent-r.0")
	warm := internBytes(b)
	if warm != "agent-r.0" {
		t.Fatalf("internBytes = %q", warm)
	}
	n := testing.AllocsPerRun(200, func() {
		if got := internBytes(b); got != "agent-r.0" {
			t.Fatalf("internBytes = %q", got)
		}
	})
	if n != 0 {
		t.Fatalf("interned lookup allocates %.1f objects/op, want 0", n)
	}
}

// TestInternOversizeAndEmpty pins the table's bounds: empty strings and
// identifiers beyond internMaxLen bypass the table but still decode
// correctly.
func TestInternOversizeAndEmpty(t *testing.T) {
	if got := internBytes(nil); got != "" {
		t.Fatalf("internBytes(nil) = %q", got)
	}
	long := make([]byte, internMaxLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if got := internBytes(long); got != string(long) {
		t.Fatalf("oversize intern mangled the string")
	}
}

// TestDecodeAllocsPinned is the allocation-count regression test for the
// decode hot path: with From and the sighting OID interned, decoding the
// update-heavy workload's envelope costs exactly one allocation — the
// interface boxing of the payload struct. A regression that re-introduces
// per-identifier string copies fails this immediately.
func TestDecodeAllocsPinned(t *testing.T) {
	env := msg.Envelope{From: "obj-1", CorrID: 42, Msg: msg.UpdateReq{S: core.Sighting{
		OID: "truck-7", T: time.Unix(1_700_000_000, 0).UTC(), Pos: geo.Pt(123.5, 456.25), SensAcc: 10,
	}}}
	data, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the intern table so the measured runs hit it.
	if _, err := Decode(data); err != nil {
		t.Fatal(err)
	}
	const maxAllocs = 1
	n := testing.AllocsPerRun(500, func() {
		if _, err := Decode(data); err != nil {
			t.Fatal(err)
		}
	})
	if n > maxAllocs {
		t.Fatalf("Decode(UpdateReq) allocates %.1f objects/op, want ≤ %d (identifier interning regressed?)", n, maxAllocs)
	}
}
