package wire

import (
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sight := core.Sighting{OID: "truck-7", T: time.Unix(1_700_000_000, 0).UTC(), Pos: geo.Pt(123.5, 456.25), SensAcc: 10}
	tests := []struct {
		name string
		env  msg.Envelope
	}{
		{"update", msg.Envelope{From: "obj-1", CorrID: 42, Msg: msg.UpdateReq{S: sight}}},
		{"register", msg.Envelope{From: "client", Msg: msg.RegisterReq{
			S:       sight,
			RegInfo: core.RegInfo{Registrant: "client", DesAcc: 10, MinAcc: 50},
			Origin:  msg.Origin{Node: "client", OpID: 7},
		}}},
		{"range fwd", msg.Envelope{From: "r.0", Msg: msg.RangeQueryFwd{
			Area:       core.AreaFromRect(geo.R(0, 0, 100, 100)),
			ReqAcc:     25,
			ReqOverlap: 0.5,
			Origin:     msg.Origin{Node: "r.3", OpID: 99},
			Hops:       2,
		}}},
		{"sub res", msg.Envelope{From: "r.1", Reply: false, Msg: msg.RangeQuerySubRes{
			OpID:        99,
			Objs:        []core.Entry{{OID: "a", LD: core.LocationDescriptor{Pos: geo.Pt(1, 2), Acc: 3}}},
			CoveredSize: 2500,
			Leaf:        msg.LeafInfo{ID: "r.1", Area: core.AreaFromRect(geo.R(0, 0, 50, 50))},
		}}},
		{"error reply", msg.Envelope{From: "r", CorrID: 3, Reply: true, Msg: msg.ErrorResFrom(core.ErrNotFound)}},
		{"neighbor res", msg.Envelope{From: "r.2", Msg: msg.NeighborQueryRes{
			Found:   true,
			Nearest: core.Entry{OID: "taxi-3", LD: core.LocationDescriptor{Pos: geo.Pt(9, 9), Acc: 5}},
			Near:    []core.Entry{{OID: "taxi-5"}},
		}}},
		{"ack", msg.Envelope{From: "x", CorrID: 1, Reply: true, Msg: msg.Ack{}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			data, err := Encode(tt.env)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, err := Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got.From != tt.env.From || got.CorrID != tt.env.CorrID || got.Reply != tt.env.Reply {
				t.Errorf("envelope header mismatch: %+v vs %+v", got, tt.env)
			}
			switch want := tt.env.Msg.(type) {
			case msg.UpdateReq:
				u, ok := got.Msg.(msg.UpdateReq)
				if !ok || u.S != want.S {
					t.Errorf("payload = %#v, want %#v", got.Msg, want)
				}
			case msg.RangeQuerySubRes:
				u, ok := got.Msg.(msg.RangeQuerySubRes)
				if !ok || len(u.Objs) != 1 || u.Objs[0].OID != "a" || u.CoveredSize != 2500 {
					t.Errorf("payload = %#v", got.Msg)
				}
				if !u.Leaf.Valid() {
					t.Error("leaf info lost")
				}
			case msg.NeighborQueryRes:
				u, ok := got.Msg.(msg.NeighborQueryRes)
				if !ok || u.Nearest.OID != "taxi-3" || len(u.Near) != 1 {
					t.Errorf("payload = %#v", got.Msg)
				}
			}
		})
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not an envelope")); err == nil {
		t.Error("garbage decoded without error")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty datagram decoded without error")
	}
}

func TestEncodeDeterministicSize(t *testing.T) {
	env := msg.Envelope{From: "r.0", Msg: msg.PosQueryFwd{OID: "o", Origin: msg.Origin{Node: "r.1", OpID: 5}}}
	a, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Errorf("encoding size unstable: %d vs %d", len(a), len(b))
	}
}
