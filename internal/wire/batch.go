package wire

import (
	"errors"
	"fmt"

	"locsvc/internal/msg"
)

// batchMagic is the first byte of a batch frame. It is chosen far above
// wireVersion and reserved forever: the envelope version byte will never
// reach it (a version bump that close to 0xB7 must skip it), so a receiver
// can tell the two frame kinds apart from the first octet alone.
const batchMagic = 0xB7

// batchElemMin is the smallest wire footprint of one batched envelope: a
// 12-byte minimal legacy frame (version, tag, empty-From length byte,
// CorrID, flags) plus its one-byte length prefix. The batch count guard
// uses it to reject impossible counts before allocating.
const batchElemMin = 13

// errEmptyBatch rejects encoding a batch of zero envelopes.
var errEmptyBatch = errors.New("wire: encoding batch: no envelopes")

// IsBatch reports whether data starts like a batch frame. A false return
// means the datagram is (at most) a single legacy envelope frame.
func IsBatch(data []byte) bool {
	return len(data) > 0 && data[0] == batchMagic
}

// EncodeBatch serializes envs into a fresh buffer. It is the convenience
// form of AppendEncodeBatch for callers without a buffer to reuse.
func EncodeBatch(envs []msg.Envelope) ([]byte, error) {
	return AppendEncodeBatch(nil, envs)
}

// AppendEncodeBatch appends the batch encoding of envs to dst and returns
// the extended slice. A single envelope encodes as a plain legacy frame —
// batching is invisible on the wire until there are at least two envelopes
// to coalesce — and zero envelopes are an error.
func AppendEncodeBatch(dst []byte, envs []msg.Envelope) ([]byte, error) {
	switch len(envs) {
	case 0:
		return dst, errEmptyBatch
	case 1:
		return AppendEncode(dst, envs[0])
	}
	mark := len(dst)
	dst = append(dst, batchMagic, wireVersion)
	dst = appendUvarint(dst, uint64(len(envs)))
	sp := GetBuffer()
	for _, env := range envs {
		frame, err := AppendEncode((*sp)[:0], env)
		if err != nil {
			PutBuffer(sp)
			return dst[:mark], err
		}
		*sp = frame
		dst = appendUvarint(dst, uint64(len(frame)))
		dst = append(dst, frame...)
	}
	PutBuffer(sp)
	return dst, nil
}

// DecodeBatch deserializes a batch datagram into its envelopes. A datagram
// that is not a batch frame is decoded as a single legacy envelope, so
// receivers can route every datagram through this one entry point. Like
// Decode, the whole datagram either parses exactly or is an error: a bad
// count, a truncated inner envelope and trailing bytes are all rejected.
func DecodeBatch(data []byte) ([]msg.Envelope, error) {
	if !IsBatch(data) {
		env, err := Decode(data)
		if err != nil {
			return nil, err
		}
		return []msg.Envelope{env}, nil
	}
	if len(data) < 2 {
		return nil, fmt.Errorf("wire: decoding batch: %d-byte datagram is shorter than the header", len(data))
	}
	if data[1] != wireVersion {
		return nil, fmt.Errorf("wire: decoding batch: unsupported wire version %d (have %d)", data[1], wireVersion)
	}
	r := reader{data: data, off: 2}
	count := r.length(batchElemMin)
	if r.err != nil {
		return nil, fmt.Errorf("wire: decoding batch header: %w", r.err)
	}
	if count < 2 {
		return nil, fmt.Errorf("wire: decoding batch: count %d (a batch carries at least 2 envelopes)", count)
	}
	envs := make([]msg.Envelope, 0, count)
	for i := 0; i < count; i++ {
		n := r.length(1)
		frame := r.take(n)
		if r.err != nil {
			return nil, fmt.Errorf("wire: decoding batch envelope %d/%d: %w", i+1, count, r.err)
		}
		env, err := Decode(frame)
		if err != nil {
			return nil, fmt.Errorf("wire: decoding batch envelope %d/%d: %w", i+1, count, err)
		}
		envs = append(envs, env)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("wire: decoding batch: %d trailing bytes", len(data)-r.off)
	}
	return envs, nil
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ---------------------------------------------------------------------------
// BatchBuilder

// BatchBuilder accumulates pre-encoded envelope frames and flushes them as
// one datagram. It owns the frame format so transports only hold flush
// policy (size cap, count cap, linger); the builder guarantees the
// 1-envelope == legacy frame rule. Builders are not safe for concurrent
// use — the transport's coalescer serializes access per destination.
type BatchBuilder struct {
	items []byte // length-prefixed frames, back to back
	count int
	first int // byte length of the first frame, without its prefix
}

// Add appends one encoded envelope frame (the output of AppendEncode).
func (b *BatchBuilder) Add(frame []byte) {
	if b.count == 0 {
		b.first = len(frame)
	}
	b.items = appendUvarint(b.items, uint64(len(frame)))
	b.items = append(b.items, frame...)
	b.count++
}

// Count returns the number of frames added since the last Reset.
func (b *BatchBuilder) Count() int { return b.count }

// Size returns the datagram size the current contents flush to: the bare
// frame for a single envelope, header plus prefixed frames otherwise.
func (b *BatchBuilder) Size() int {
	switch b.count {
	case 0:
		return 0
	case 1:
		return b.first
	}
	return 2 + uvarintLen(uint64(b.count)) + len(b.items)
}

// SizeWith returns the flush size if one more frame of frameLen bytes were
// added — the coalescer's pre-flight check against the datagram limit.
func (b *BatchBuilder) SizeWith(frameLen int) int {
	if b.count == 0 {
		return frameLen
	}
	return 2 + uvarintLen(uint64(b.count+1)) + len(b.items) + uvarintLen(uint64(frameLen)) + frameLen
}

// AppendTo appends the flush bytes to dst: nothing for an empty builder, a
// legacy frame for one envelope, a batch frame otherwise.
func (b *BatchBuilder) AppendTo(dst []byte) []byte {
	switch b.count {
	case 0:
		return dst
	case 1:
		pfx := uvarintLen(uint64(b.first))
		return append(dst, b.items[pfx:]...)
	}
	dst = append(dst, batchMagic, wireVersion)
	dst = appendUvarint(dst, uint64(b.count))
	return append(dst, b.items...)
}

// Reset empties the builder, retaining its buffer.
func (b *BatchBuilder) Reset() {
	b.items = b.items[:0]
	b.count = 0
	b.first = 0
}
