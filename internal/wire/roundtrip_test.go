package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// This file property-tests the binary codec over the full tag registry:
// for every registered message type, decode(encode(x)) must reproduce x
// exactly, and — while the retired gob codec is still around — must agree
// with what a gob round trip of the same envelope produces. The corpus
// uses UTC timestamps (the codec normalizes instants to UTC; see the
// package doc) and finite floats (NaN breaks value equality, though it
// round-trips bit-exactly, which FuzzDecode covers).

// randString draws a short string including empty, ASCII and multi-byte
// runes.
func randString(rng *rand.Rand) string {
	const runes = "abcdefghijklmnopqrstuvwxyz0123456789.-_αβγ☂日本"
	n := rng.Intn(16)
	rs := []rune(runes)
	out := make([]rune, n)
	for i := range out {
		out[i] = rs[rng.Intn(len(rs))]
	}
	return string(out)
}

func randNodeID(rng *rand.Rand) msg.NodeID { return msg.NodeID(randString(rng)) }
func randOID(rng *rand.Rand) core.OID      { return core.OID(randString(rng)) }

// randTime draws a UTC instant in a ±50-year window around the epoch of
// the paper, with sub-second precision.
func randTime(rng *rand.Rand) time.Time {
	sec := int64(1_600_000_000) + rng.Int63n(3_000_000_000) - 1_500_000_000
	return time.Unix(sec, rng.Int63n(1_000_000_000)).UTC()
}

func randF(rng *rand.Rand) float64 { return rng.NormFloat64() * 1e6 }

func randInt(rng *rand.Rand) int { return rng.Intn(2_000_001) - 1_000_000 }

func randPoint(rng *rand.Rand) geo.Point { return geo.Pt(randF(rng), randF(rng)) }

func randSighting(rng *rand.Rand) core.Sighting {
	return core.Sighting{OID: randOID(rng), T: randTime(rng), Pos: randPoint(rng), SensAcc: randF(rng)}
}

func randRegInfo(rng *rand.Rand) core.RegInfo {
	return core.RegInfo{Registrant: randString(rng), DesAcc: randF(rng), MinAcc: randF(rng), MaxSpeed: randF(rng)}
}

func randLD(rng *rand.Rand) core.LocationDescriptor {
	return core.LocationDescriptor{Pos: randPoint(rng), Acc: randF(rng)}
}

func randEntry(rng *rand.Rand) core.Entry {
	return core.Entry{OID: randOID(rng), LD: randLD(rng)}
}

// randEntries returns nil about a third of the time — nil and absent are
// the same thing on the wire, matching gob's zero-field omission.
func randEntries(rng *rand.Rand) []core.Entry {
	if rng.Intn(3) == 0 {
		return nil
	}
	es := make([]core.Entry, 1+rng.Intn(5))
	for i := range es {
		es[i] = randEntry(rng)
	}
	return es
}

func randNodeIDs(rng *rand.Rand) []msg.NodeID {
	if rng.Intn(3) == 0 {
		return nil
	}
	ids := make([]msg.NodeID, 1+rng.Intn(4))
	for i := range ids {
		ids[i] = randNodeID(rng)
	}
	return ids
}

func randOIDs(rng *rand.Rand) []core.OID {
	if rng.Intn(3) == 0 {
		return nil
	}
	ids := make([]core.OID, 1+rng.Intn(5))
	for i := range ids {
		ids[i] = randOID(rng)
	}
	return ids
}

func randArea(rng *rand.Rand) core.Area {
	if rng.Intn(4) == 0 {
		return core.Area{}
	}
	poly := make(geo.Polygon, 3+rng.Intn(6))
	for i := range poly {
		poly[i] = randPoint(rng)
	}
	return core.Area{Vertices: poly}
}

func randOrigin(rng *rand.Rand) msg.Origin {
	return msg.Origin{Node: randNodeID(rng), OpID: rng.Uint64()}
}

func randLeafInfo(rng *rand.Rand) msg.LeafInfo {
	return msg.LeafInfo{ID: randNodeID(rng), Area: randArea(rng)}
}

func randShardDiags(rng *rand.Rand) []msg.ShardDiag {
	if rng.Intn(3) == 0 {
		return nil
	}
	sd := make([]msg.ShardDiag, 1+rng.Intn(8))
	for i := range sd {
		sd[i] = msg.ShardDiag{Len: randInt(rng), Ops: rng.Int63(), Contended: rng.Int63()}
	}
	return sd
}

func randTierDiag(rng *rand.Rand) *msg.TierDiag {
	if rng.Intn(2) == 0 {
		return nil
	}
	return &msg.TierDiag{
		Warm:          rng.Intn(2) == 0,
		MemtableBytes: rng.Int63(),
		RunBytes:      rng.Int63(),
		MetaBytes:     rng.Int63(),
		Runs:          randInt(rng),
		DiskRecords:   rng.Int63(),
		DiskLive:      rng.Int63(),
		Flushes:       rng.Int63(),
		Compactions:   rng.Int63(),
		BloomHits:     rng.Int63(),
		BloomMisses:   rng.Int63(),
		Backlog:       randInt(rng),
	}
}

func randStrings(rng *rand.Rand) []string {
	if rng.Intn(3) == 0 {
		return nil
	}
	ss := make([]string, 1+rng.Intn(4))
	for i := range ss {
		ss[i] = randString(rng)
	}
	return ss
}

func randBytes(rng *rand.Rand) []byte {
	if rng.Intn(3) == 0 {
		return nil
	}
	b := make([]byte, 1+rng.Intn(64))
	rng.Read(b)
	return b
}

func randSightings(rng *rand.Rand) []core.Sighting {
	if rng.Intn(3) == 0 {
		return nil
	}
	ss := make([]core.Sighting, 1+rng.Intn(4))
	for i := range ss {
		ss[i] = randSighting(rng)
	}
	return ss
}

func randVisitorState(rng *rand.Rand) msg.VisitorState {
	return msg.VisitorState{
		OID:        randOID(rng),
		ForwardRef: randString(rng),
		OfferedAcc: randF(rng),
		RegInfo:    randRegInfo(rng),
		PathT:      randTime(rng),
	}
}

func randVisitorStates(rng *rand.Rand) []msg.VisitorState {
	if rng.Intn(3) == 0 {
		return nil
	}
	vs := make([]msg.VisitorState, 1+rng.Intn(3))
	for i := range vs {
		vs[i] = randVisitorState(rng)
	}
	return vs
}

func randReplRecords(rng *rand.Rand) []msg.ReplRecord {
	if rng.Intn(4) == 0 {
		return nil
	}
	recs := make([]msg.ReplRecord, 1+rng.Intn(4))
	for i := range recs {
		recs[i] = msg.ReplRecord{
			Op:        msg.ReplOp(1 + rng.Intn(6)),
			Sightings: randSightings(rng),
			OID:       randOID(rng),
			Visitor:   randVisitorState(rng),
			Visitors:  randVisitorStates(rng),
			Dead:      randOIDs(rng),
			Runs:      randStrings(rng),
			NextSeq:   rng.Uint64(),
			ClearMem:  rng.Intn(2) == 0,
		}
	}
	return recs
}

func randReplDiag(rng *rand.Rand) *msg.ReplDiag {
	if rng.Intn(2) == 0 {
		return nil
	}
	return &msg.ReplDiag{
		Role:          randString(rng),
		Peer:          randNodeID(rng),
		Epoch:         rng.Uint64(),
		Pending:       rng.Int63(),
		Acked:         rng.Int63(),
		Fenced:        rng.Int63(),
		RunsInstalled: rng.Int63(),
		Resyncs:       rng.Int63(),
	}
}

// randomMessage builds a random instance of the message type identified by
// tag. It must cover every entry of the registry: the round-trip test
// fails on any tag it cannot instantiate.
func randomMessage(rng *rand.Rand, tag msg.Tag) (msg.Message, bool) {
	switch tag {
	case msg.TagRegisterReq:
		return msg.RegisterReq{S: randSighting(rng), RegInfo: randRegInfo(rng), Origin: randOrigin(rng), Hops: randInt(rng), Seq: rng.Uint64()}, true
	case msg.TagRegisterRes:
		return msg.RegisterRes{OpID: rng.Uint64(), Agent: randNodeID(rng), AgentInfo: randLeafInfo(rng), OfferedAcc: randF(rng), Hops: randInt(rng)}, true
	case msg.TagRegisterFailed:
		return msg.RegisterFailed{OpID: rng.Uint64(), Server: randNodeID(rng), Achievable: randF(rng)}, true
	case msg.TagCreatePath:
		return msg.CreatePath{OID: randOID(rng), Leaf: randLeafInfo(rng), SightingT: randTime(rng)}, true
	case msg.TagRemovePath:
		return msg.RemovePath{OID: randOID(rng), SightingT: randTime(rng), HasNewPos: rng.Intn(2) == 0, NewPos: randPoint(rng)}, true
	case msg.TagUpdateReq:
		return msg.UpdateReq{S: randSighting(rng), Seq: rng.Uint64()}, true
	case msg.TagUpdateRes:
		return msg.UpdateRes{Moved: rng.Intn(2) == 0, NewAgent: randNodeID(rng), AgentInfo: randLeafInfo(rng), OfferedAcc: randF(rng)}, true
	case msg.TagHandoverReq:
		return msg.HandoverReq{S: randSighting(rng), RegInfo: randRegInfo(rng), OldAgent: randNodeID(rng), Direct: rng.Intn(2) == 0, Hops: randInt(rng)}, true
	case msg.TagHandoverRes:
		return msg.HandoverRes{NewAgent: randNodeID(rng), AgentInfo: randLeafInfo(rng), OfferedAcc: randF(rng), Hops: randInt(rng)}, true
	case msg.TagDeregisterReq:
		return msg.DeregisterReq{OID: randOID(rng)}, true
	case msg.TagDeregisterRes:
		return msg.DeregisterRes{}, true
	case msg.TagChangeAccReq:
		return msg.ChangeAccReq{OID: randOID(rng), DesAcc: randF(rng), MinAcc: randF(rng)}, true
	case msg.TagChangeAccRes:
		return msg.ChangeAccRes{OK: rng.Intn(2) == 0, OfferedAcc: randF(rng)}, true
	case msg.TagNotifyAvailAcc:
		return msg.NotifyAvailAcc{OID: randOID(rng), OfferedAcc: randF(rng)}, true
	case msg.TagRequestUpdate:
		return msg.RequestUpdate{OID: randOID(rng)}, true
	case msg.TagPosQueryReq:
		return msg.PosQueryReq{OID: randOID(rng), AccBound: randF(rng)}, true
	case msg.TagPosQueryDirect:
		return msg.PosQueryDirect{OID: randOID(rng)}, true
	case msg.TagPosQueryRes:
		return msg.PosQueryRes{OpID: rng.Uint64(), Found: rng.Intn(2) == 0, LD: randLD(rng), Agent: randNodeID(rng), AgentInfo: randLeafInfo(rng), MaxSpeed: randF(rng), Hops: randInt(rng), Partial: rng.Intn(2) == 0}, true
	case msg.TagPosQueryFwd:
		return msg.PosQueryFwd{OID: randOID(rng), Origin: randOrigin(rng), Hops: randInt(rng)}, true
	case msg.TagRangeQueryReq:
		return msg.RangeQueryReq{Area: randArea(rng), ReqAcc: randF(rng), ReqOverlap: randF(rng)}, true
	case msg.TagRangeQueryFwd:
		return msg.RangeQueryFwd{Area: randArea(rng), ReqAcc: randF(rng), ReqOverlap: randF(rng), Origin: randOrigin(rng), Hops: randInt(rng)}, true
	case msg.TagRangeQuerySubRes:
		return msg.RangeQuerySubRes{OpID: rng.Uint64(), Objs: randEntries(rng), CoveredSize: randF(rng), Leaf: randLeafInfo(rng), Hops: randInt(rng), Unreachable: randNodeIDs(rng), UnreachableSize: randF(rng)}, true
	case msg.TagRangeQueryRes:
		return msg.RangeQueryRes{Objs: randEntries(rng), Servers: randInt(rng), Hops: randInt(rng), Partial: rng.Intn(2) == 0, Unreachable: randNodeIDs(rng)}, true
	case msg.TagNeighborQueryReq:
		return msg.NeighborQueryReq{P: randPoint(rng), ReqAcc: randF(rng), NearQual: randF(rng)}, true
	case msg.TagNeighborQueryRes:
		return msg.NeighborQueryRes{Found: rng.Intn(2) == 0, Nearest: randEntry(rng), Near: randEntries(rng), GuaranteedMinDist: randF(rng), Partial: rng.Intn(2) == 0, Unreachable: randNodeIDs(rng)}, true
	case msg.TagEventSubscribe:
		return msg.EventSubscribe{SubID: randString(rng), Kind: msg.EventKind(rng.Intn(3)), Area: randArea(rng), ReqAcc: randF(rng), Threshold: randInt(rng), Distance: randF(rng), Coordinator: randNodeID(rng), Subscriber: randNodeID(rng)}, true
	case msg.TagEventUnsubscribe:
		return msg.EventUnsubscribe{SubID: randString(rng), Area: randArea(rng)}, true
	case msg.TagEventCount:
		return msg.EventCount{SubID: randString(rng), Leaf: randNodeID(rng), Count: randInt(rng), Seq: rng.Uint64()}, true
	case msg.TagEventNotify:
		return msg.EventNotify{SubID: randString(rng), Fired: rng.Intn(2) == 0, Total: randInt(rng), Objs: randOIDs(rng), Seq: rng.Uint64()}, true
	case msg.TagDiagReq:
		return msg.DiagReq{}, true
	case msg.TagDiagRes:
		return msg.DiagRes{Server: randNodeID(rng), IsLeaf: rng.Intn(2) == 0, Visitors: randInt(rng), Sightings: randInt(rng), Shards: randShardDiags(rng), Epoch: rng.Uint64(), Tier: randTierDiag(rng), Repl: randReplDiag(rng), PipelineOps: rng.Int63(), PipelineHandoffs: rng.Int63(), EventSubs: randInt(rng), EventCoordSubs: randInt(rng), Metrics: randString(rng)}, true
	case msg.TagAck:
		return msg.Ack{}, true
	case msg.TagErrorRes:
		return msg.ErrorRes{Code: randString(rng), Text: randString(rng)}, true
	case msg.TagReplAppend:
		return msg.ReplAppend{Epoch: rng.Uint64(), Stream: randInt(rng), FirstSeq: rng.Uint64(), Recs: randReplRecords(rng)}, true
	case msg.TagReplAck:
		return msg.ReplAck{Epoch: rng.Uint64(), Stream: randInt(rng), NextSeq: rng.Uint64(), Fenced: rng.Intn(2) == 0, NeedSync: rng.Intn(2) == 0}, true
	case msg.TagRunFetch:
		return msg.RunFetch{Shard: randInt(rng), Name: randString(rng), Off: rng.Int63(), MaxBytes: randInt(rng)}, true
	case msg.TagRunFetchRes:
		return msg.RunFetchRes{Size: rng.Int63(), Data: randBytes(rng), EOF: rng.Intn(2) == 0}, true
	case msg.TagPromote:
		return msg.Promote{Epoch: rng.Uint64()}, true
	case msg.TagPromoteRes:
		return msg.PromoteRes{Epoch: rng.Uint64()}, true
	}
	return nil, false
}

// TestRoundTripEveryRegisteredType drives decode(encode(x)) == x with a
// random-value corpus over the complete tag registry, and cross-checks
// every envelope against the retired gob codec.
func TestRoundTripEveryRegisteredType(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	for _, tag := range msg.AllTags() {
		tag := tag
		t.Run(tag.String(), func(t *testing.T) {
			for i := 0; i < 128; i++ {
				m, ok := randomMessage(rng, tag)
				if !ok {
					t.Fatalf("corpus cannot instantiate registered tag %v — add it to randomMessage", tag)
				}
				if got, _ := msg.TagOf(m); got != tag {
					t.Fatalf("TagOf(%T) = %v, want %v", m, got, tag)
				}
				env := msg.Envelope{
					From:   randNodeID(rng),
					CorrID: rng.Uint64(),
					Reply:  rng.Intn(2) == 0,
					Msg:    m,
				}
				data, err := Encode(env)
				if err != nil {
					t.Fatalf("Encode(%#v): %v", env, err)
				}
				got, err := Decode(data)
				if err != nil {
					t.Fatalf("Decode: %v (envelope %#v)", err, env)
				}
				if !reflect.DeepEqual(got, env) {
					t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, env)
				}

				// Cross-check against the old gob codec: both formats
				// must reconstruct the same envelope.
				gobData, err := EncodeGob(env)
				if err != nil {
					t.Fatalf("EncodeGob: %v", err)
				}
				gobEnv, err := DecodeGob(gobData)
				if err != nil {
					t.Fatalf("DecodeGob: %v", err)
				}
				if !reflect.DeepEqual(got, gobEnv) {
					t.Fatalf("binary and gob decodings disagree:\n binary %#v\n    gob %#v", got, gobEnv)
				}
			}
		})
	}
}

// TestRegistryDense pins the registry's shape: AllTags covers every
// assigned value with unique names, so a new message type that skips the
// registry is caught here or by the coverage loop above.
func TestRegistryDense(t *testing.T) {
	tags := msg.AllTags()
	if len(tags) != 39 {
		t.Fatalf("registry has %d tags, want 39 (update this test when adding messages)", len(tags))
	}
	seen := map[string]bool{}
	for i, tag := range tags {
		if int(tag) != i+1 {
			t.Errorf("tag %d is %v: registry must stay dense", i, tag)
		}
		name := tag.String()
		if seen[name] {
			t.Errorf("duplicate tag name %q", name)
		}
		seen[name] = true
	}
	if got := msg.Tag(250).String(); got != "Tag(250)" {
		t.Errorf("unknown tag String() = %q", got)
	}
	if _, ok := msg.TagOf(nil); ok {
		t.Error("TagOf(nil) reported a registered tag")
	}
}

// TestDecodeRejectsCorruption spot-checks the structured failure modes
// (FuzzDecode explores the full space): truncations at every byte
// boundary, trailing garbage, reserved flags, bad version and unknown
// tags all error out and never panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	env := msg.Envelope{From: "r.0", CorrID: 9, Msg: msg.UpdateReq{S: core.Sighting{
		OID: "obj-1", T: time.Unix(1_700_000_000, 123).UTC(), Pos: geo.Pt(1, 2), SensAcc: 3,
	}}}
	data, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
	if _, err := Decode(append(append([]byte{}, data...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	bad := append([]byte{}, data...)
	bad[0] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("wrong version accepted")
	}
	bad = append([]byte{}, data...)
	bad[1] = 200
	if _, err := Decode(bad); err == nil {
		t.Error("unknown tag accepted")
	}
}
