package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"locsvc/internal/msg"
)

// randomEnvelope builds one envelope with a random registered payload and
// random header fields.
func randomEnvelope(rng *rand.Rand) msg.Envelope {
	tags := msg.AllTags()
	for {
		tag := tags[rng.Intn(len(tags))]
		m, ok := randomMessage(rng, tag)
		if !ok {
			continue
		}
		return msg.Envelope{
			From:   randNodeID(rng),
			CorrID: rng.Uint64(),
			Reply:  rng.Intn(2) == 0,
			Msg:    m,
		}
	}
}

// TestBatchRoundTripRandomCorpus drives batch(encode) → decode over random
// envelope corpora of every size from one (the legacy-frame rule) up past
// typical coalescer caps: the decoded batch must equal the input envelope
// for envelope, in order.
func TestBatchRoundTripRandomCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for size := 1; size <= 17; size++ {
		for trial := 0; trial < 32; trial++ {
			envs := make([]msg.Envelope, size)
			for i := range envs {
				envs[i] = randomEnvelope(rng)
			}
			data, err := EncodeBatch(envs)
			if err != nil {
				t.Fatalf("size %d: encoding batch: %v", size, err)
			}
			got, err := DecodeBatch(data)
			if err != nil {
				t.Fatalf("size %d: decoding batch: %v", size, err)
			}
			if len(got) != size {
				t.Fatalf("size %d: decoded %d envelopes", size, len(got))
			}
			for i := range envs {
				if !reflect.DeepEqual(got[i], envs[i]) {
					t.Fatalf("size %d: envelope %d mismatch:\n got %#v\nwant %#v", size, i, got[i], envs[i])
				}
			}
			if size == 1 {
				if IsBatch(data) {
					t.Fatalf("1-envelope batch encoded as a batch frame")
				}
			} else if !IsBatch(data) {
				t.Fatalf("%d-envelope batch not recognized as a batch frame", size)
			}
		}
	}
}

// TestBatchOfOneIsLegacyFrame pins the compatibility rule byte-for-byte: a
// batch of one envelope IS the legacy frame, so a batching sender stays
// interoperable with any receiver, and DecodeBatch accepts legacy frames,
// so a batch-aware receiver accepts any sender.
func TestBatchOfOneIsLegacyFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 64; trial++ {
		env := randomEnvelope(rng)
		legacy, err := Encode(env)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := EncodeBatch([]msg.Envelope{env})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(legacy, batched) {
			t.Fatalf("1-envelope batch differs from legacy frame:\nbatch  %x\nlegacy %x", batched, legacy)
		}
		envs, err := DecodeBatch(legacy)
		if err != nil {
			t.Fatalf("DecodeBatch on legacy frame: %v", err)
		}
		if len(envs) != 1 || !reflect.DeepEqual(envs[0], env) {
			t.Fatalf("DecodeBatch(legacy) = %#v, want %#v", envs, env)
		}
	}
}

// TestEncodeBatchEmpty pins that a zero-envelope batch is an encode error,
// not an empty datagram.
func TestEncodeBatchEmpty(t *testing.T) {
	if _, err := EncodeBatch(nil); err == nil {
		t.Fatal("encoding an empty batch succeeded")
	}
}

// TestBatchBuilderMatchesEncodeBatch proves the incremental builder (the
// transport coalescer's path) produces byte-identical datagrams to the
// one-shot encoder, and that its size projections are exact — the
// coalescer's pre-flight maxDatagram check depends on them.
func TestBatchBuilderMatchesEncodeBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, size := range []int{1, 2, 3, 7, 150} {
		envs := make([]msg.Envelope, size)
		var bb BatchBuilder
		for i := range envs {
			envs[i] = randomEnvelope(rng)
			frame, err := Encode(envs[i])
			if err != nil {
				t.Fatal(err)
			}
			projected := bb.SizeWith(len(frame))
			bb.Add(frame)
			if bb.Size() != projected {
				t.Fatalf("size %d: SizeWith projected %d, Size after Add = %d", size, projected, bb.Size())
			}
		}
		if bb.Count() != size {
			t.Fatalf("builder count = %d, want %d", bb.Count(), size)
		}
		oneShot, err := EncodeBatch(envs)
		if err != nil {
			t.Fatal(err)
		}
		built := bb.AppendTo(nil)
		if !bytes.Equal(oneShot, built) {
			t.Fatalf("size %d: builder bytes differ from EncodeBatch", size)
		}
		if bb.Size() != len(built) {
			t.Fatalf("size %d: Size() = %d, emitted %d bytes", size, bb.Size(), len(built))
		}
		bb.Reset()
		if bb.Count() != 0 || bb.Size() != 0 || len(bb.AppendTo(nil)) != 0 {
			t.Fatalf("reset builder not empty")
		}
	}
}

// TestDecodeBatchRejectsCorruption is the corruption table for the batch
// header and stream: bad counts, truncations at every byte boundary,
// corrupted inner length prefixes and trailing bytes must all error out —
// a batch datagram parses exactly or not at all.
func TestDecodeBatchRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	envs := []msg.Envelope{randomEnvelope(rng), randomEnvelope(rng), randomEnvelope(rng)}
	data, err := EncodeBatch(envs)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(data); cut++ {
			if cut > 0 && !IsBatch(data[:cut]) {
				continue // not a batch prefix (can't happen: magic is byte 0)
			}
			if _, err := DecodeBatch(data[:cut]); err == nil {
				t.Fatalf("truncation to %d/%d bytes decoded successfully", cut, len(data))
			}
		}
	})

	t.Run("trailing bytes", func(t *testing.T) {
		if _, err := DecodeBatch(append(append([]byte{}, data...), 0x00)); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})

	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[1] ^= 0xff
		if _, err := DecodeBatch(bad); err == nil {
			t.Fatal("wrong version accepted")
		}
	})

	t.Run("bad counts", func(t *testing.T) {
		cases := map[string][]byte{
			"count zero":      {batchMagic, wireVersion, 0x00},
			"count one":       {batchMagic, wireVersion, 0x01},
			"header only":     {batchMagic, wireVersion},
			"magic only":      {batchMagic},
			"huge count":      {batchMagic, wireVersion, 0xff, 0xff, 0xff, 0xff, 0x0f},
			"truncated count": {batchMagic, wireVersion, 0x80},
		}
		for name, datagram := range cases {
			if _, err := DecodeBatch(datagram); err == nil {
				t.Errorf("%s accepted", name)
			}
		}
	})

	t.Run("count exceeds envelopes", func(t *testing.T) {
		// A valid 2-envelope stream under a count of 3: truncated
		// mid-stream from the decoder's point of view.
		two, err := EncodeBatch(envs[:2])
		if err != nil {
			t.Fatal(err)
		}
		forged := append([]byte{batchMagic, wireVersion, 0x03}, two[3:]...)
		if _, err := DecodeBatch(forged); err == nil {
			t.Fatal("count beyond envelope stream accepted")
		}
	})

	t.Run("corrupt inner length", func(t *testing.T) {
		// The first envelope's length prefix sits right after the count.
		bad := append([]byte{}, data...)
		bad[3] = 0xff // claims a 127-byte... actually varint 0xff needs a continuation — both paths must error
		if _, err := DecodeBatch(bad); err == nil {
			t.Fatal("corrupt inner length prefix accepted")
		}
	})
}
