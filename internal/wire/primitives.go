package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Decode errors. Every malformed datagram maps onto one of these (wrapped
// with the message tag by Decode); none of them panic, which FuzzDecode
// enforces.
var (
	errTruncated = errors.New("truncated datagram")
	errLength    = errors.New("length prefix exceeds datagram size")
	errBool      = errors.New("invalid boolean byte")
)

// ---------------------------------------------------------------------------
// Append-style encoders. All of them extend dst in place and only allocate
// when it lacks capacity.

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

func appendInt(dst []byte, v int) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(int64(v)))
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendTime encodes t as a UTC instant: Unix seconds plus nanoseconds.
// Monotonic readings and zone identity are dropped (see the package doc).
func appendTime(dst []byte, t time.Time) []byte {
	dst = appendI64(dst, t.Unix())
	return binary.LittleEndian.AppendUint32(dst, uint32(t.Nanosecond()))
}

// ---------------------------------------------------------------------------
// reader consumes a datagram front to back with a sticky error: after the
// first failure every subsequent read returns a zero value, so payload
// decoders can run straight-line without per-field error checks.

type reader struct {
	data []byte
	off  int
	err  error
}

// fail records the first error.
func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// remaining returns the unread byte count.
func (r *reader) remaining() int { return len(r.data) - r.off }

// take consumes n bytes, or fails with errTruncated.
func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining() < n {
		r.fail(errTruncated)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(errBool)
		return false
	}
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) integer() int { return int(r.i64()) }

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: bad varint", errTruncated))
		return 0
	}
	r.off += n
	return v
}

// length reads a uvarint length prefix for elements of at least elemSize
// bytes each, rejecting counts that cannot fit in the remaining datagram.
// This bounds every allocation a malformed datagram can cause to the
// datagram's own size.
func (r *reader) length(elemSize int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.remaining()/elemSize) {
		r.fail(errLength)
		return 0
	}
	return int(v)
}

// bytes reads a length-prefixed byte slice, copying it out of the
// datagram. Zero length decodes as nil, matching the slice convention.
func (r *reader) bytes() []byte {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return nil
	}
	return append([]byte(nil), r.take(n)...)
}

// appendBytes encodes a length-prefixed byte slice.
func appendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// str reads a length-prefixed string, copying it out of the datagram.
func (r *reader) str() string {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return ""
	}
	return string(r.take(n))
}

// timestamp reads a UTC instant.
func (r *reader) timestamp() time.Time {
	sec := r.i64()
	b := r.take(4)
	if r.err != nil {
		return time.Time{}
	}
	nsec := binary.LittleEndian.Uint32(b)
	return time.Unix(sec, int64(nsec)).UTC()
}
