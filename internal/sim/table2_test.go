package sim

import (
	"context"
	"math/rand"
	"testing"

	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
)

func table2World(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(Config{
		NumObjects: 400,
		Seed:       21,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestUpdateRandomLocalNeverHandsOver(t *testing.T) {
	w := table2World(t)
	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if err := w.UpdateRandomLocal(ctx, rng); err != nil {
			t.Fatal(err)
		}
	}
	for _, leaf := range w.Dep.Leaves() {
		srv, _ := w.Dep.Server(leaf)
		if got := srv.Metrics().Counter("handover_initiated").Value(); got != 0 {
			t.Errorf("leaf %s initiated %d handovers from local updates", leaf, got)
		}
	}
}

func TestPosQueryFromLocalAndRemote(t *testing.T) {
	w := table2World(t)
	rng := rand.New(rand.NewSource(2))
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := w.PosQueryFrom(ctx, rng, true); err != nil {
			t.Fatalf("local: %v", err)
		}
		if err := w.PosQueryFrom(ctx, rng, false); err != nil {
			t.Fatalf("remote: %v", err)
		}
	}
	entry, _ := w.Dep.Server(w.Dep.Leaves()[0])
	if got := entry.Metrics().Counter("pos_query_local").Value(); got != 20 {
		t.Errorf("local queries = %d, want 20", got)
	}
	if got := entry.Metrics().Counter("pos_query_remote").Value(); got != 20 {
		t.Errorf("remote queries = %d, want 20", got)
	}
}

func TestRangeQueryServersShapes(t *testing.T) {
	w := table2World(t)
	rng := rand.New(rand.NewSource(3))
	ctx := context.Background()
	for _, servers := range []int{0, 1, 2, 4} {
		if err := w.RangeQueryServers(ctx, rng, servers); err != nil {
			t.Errorf("servers=%d: %v", servers, err)
		}
	}
	if err := w.RangeQueryServers(ctx, rng, 3); err == nil {
		t.Error("unsupported server count accepted")
	}
}

func TestTable2HelpersRejectOtherShapes(t *testing.T) {
	w, err := NewWorld(Config{
		Spec: hierarchy.Spec{
			RootArea: geo.R(0, 0, 900, 900),
			Levels:   []hierarchy.Level{{Rows: 3, Cols: 3}},
		},
		NumObjects: 50,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	rng := rand.New(rand.NewSource(5))
	if err := w.PosQueryFrom(context.Background(), rng, true); err == nil {
		t.Error("table-2 helper accepted a 9-leaf deployment")
	}
}
