// Package sim deploys a complete location service in-process and drives it
// with configurable workloads: it is the testbed substitute for the paper's
// five-workstation evaluation (Section 7.2) and powers the Table 2
// reproduction as well as the hierarchy, caching, locality and
// update-protocol ablations (DESIGN.md, experiments index).
//
// The paper's three load-generator machines become worker goroutines; its
// 100 Mbit LAN becomes the in-process transport, optionally with a per-hop
// latency model so that local/remote asymmetries stay visible.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/metrics"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/transport"
)

// Config describes a simulated deployment.
type Config struct {
	// Spec is the hierarchy shape; defaults to the paper's testbed
	// (1.5 km × 1.5 km, one root, four leaves).
	Spec hierarchy.Spec
	// NumObjects tracked objects are registered at uniformly random
	// positions (the paper registers 10 000).
	NumObjects int
	// ServerOpts apply to every server.
	ServerOpts server.Options
	// HopLatency, if positive, delays every message delivery, modelling
	// LAN hops.
	HopLatency time.Duration
	// Seed makes object placement reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Spec.RootArea.Empty() {
		c.Spec = hierarchy.Spec{
			RootArea: geo.R(0, 0, 1500, 1500),
			Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
		}
	}
	if c.NumObjects == 0 {
		c.NumObjects = 10_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// World is a running simulated deployment.
type World struct {
	Config  Config
	Net     *transport.Inproc
	Dep     *hierarchy.Deployment
	Objects []*client.TrackedObject

	// Messages counts every delivered transport message.
	messages atomic.Int64

	ownerClients []*client.Client
	objPositions []geo.Point
	objEntryLeaf []msg.NodeID

	t2state
}

// NewWorld deploys the hierarchy and registers the objects.
func NewWorld(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	w := &World{Config: cfg}
	opts := transport.InprocOptions{
		OnDeliver: func(_, _ msg.NodeID, _ msg.Message) { w.messages.Add(1) },
	}
	if cfg.HopLatency > 0 {
		opts.Latency = func(_, _ msg.NodeID) time.Duration { return cfg.HopLatency }
	}
	w.Net = transport.NewInproc(opts)

	dep, err := hierarchy.Deploy(w.Net, cfg.Spec, cfg.ServerOpts)
	if err != nil {
		return nil, fmt.Errorf("sim: deploying: %w", err)
	}
	w.Dep = dep

	// One registering client per leaf keeps registration local, like the
	// paper's setup.
	perLeaf := make(map[msg.NodeID]*client.Client)
	for _, leaf := range dep.Leaves() {
		c, cerr := client.New(w.Net, "owner-"+leaf, leaf, client.Options{Timeout: 30 * time.Second})
		if cerr != nil {
			w.Close()
			return nil, fmt.Errorf("sim: owner client: %w", cerr)
		}
		perLeaf[leaf] = c
		w.ownerClients = append(w.ownerClients, c)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	area := cfg.Spec.RootArea
	start := time.Now()
	ctx := context.Background()
	for i := 0; i < cfg.NumObjects; i++ {
		p := geo.Pt(area.Min.X+rng.Float64()*area.Width(), area.Min.Y+rng.Float64()*area.Height())
		leaf, ok := dep.LeafFor(p)
		if !ok {
			w.Close()
			return nil, fmt.Errorf("sim: no leaf for %v", p)
		}
		s := core.Sighting{OID: core.OID(fmt.Sprintf("obj-%d", i)), T: start, Pos: p, SensAcc: 5}
		obj, rerr := perLeaf[leaf].Register(ctx, s, 25, 100, 3)
		if rerr != nil {
			w.Close()
			return nil, fmt.Errorf("sim: registering object %d: %w", i, rerr)
		}
		w.Objects = append(w.Objects, obj)
		w.objPositions = append(w.objPositions, p)
		w.objEntryLeaf = append(w.objEntryLeaf, leaf)
	}

	// Quiesce: createPath propagates leaf-to-root asynchronously
	// (Algorithm 6-1); the world is ready once the root level has a
	// forwarding reference for every object.
	deadline := time.Now().Add(time.Minute)
	for dep.RootVisitorCount() < cfg.NumObjects {
		if time.Now().After(deadline) {
			w.Close()
			return nil, fmt.Errorf("sim: forwarding paths incomplete: %d/%d at root",
				dep.RootVisitorCount(), cfg.NumObjects)
		}
		time.Sleep(time.Millisecond)
	}
	return w, nil
}

// Messages returns the number of transport messages delivered so far.
func (w *World) Messages() int64 { return w.messages.Load() }

// Close tears the world down.
func (w *World) Close() {
	for _, c := range w.ownerClients {
		c.Close()
	}
	w.t2mu.Lock()
	for _, c := range w.t2clients {
		c.Close()
	}
	w.t2mu.Unlock()
	if w.Dep != nil {
		w.Dep.Close()
	}
	if w.Net != nil {
		w.Net.Close()
	}
}

// Mix is a query/update mix: weights need not sum to one.
type Mix struct {
	Updates    float64
	PosQueries float64
	RangeQuery float64
	Neighbor   float64
}

// Load describes one load-generation run.
type Load struct {
	// Workers is the number of concurrent load-generator goroutines (the
	// paper uses parallel client processes on three machines).
	Workers int
	// OpsPerWorker bounds the run.
	OpsPerWorker int
	// Mix selects operation frequencies.
	Mix Mix
	// Locality is the fraction of queries answered in the entry server's
	// own service area: the target object (or area) is chosen from the
	// entry leaf for local operations and from elsewhere for remote ones.
	Locality float64
	// RangeSize is the side length of range-query areas (the paper's
	// medium size is 50 m).
	RangeSize float64
	// Seed drives workload choice.
	Seed int64
}

func (l Load) withDefaults() Load {
	if l.Workers == 0 {
		l.Workers = 12
	}
	if l.OpsPerWorker == 0 {
		l.OpsPerWorker = 500
	}
	if l.RangeSize == 0 {
		l.RangeSize = 50
	}
	if l.Seed == 0 {
		l.Seed = 7
	}
	if l.Mix == (Mix{}) {
		l.Mix = Mix{Updates: 1, PosQueries: 1, RangeQuery: 1}
	}
	return l
}

// OpStats aggregates one operation type's results.
type OpStats struct {
	Count      int64
	Errors     int64
	MeanMs     float64
	P99Ms      float64
	Throughput float64 // operations per second of wall time
}

// Results summarizes a load run.
type Results struct {
	PerOp    map[string]OpStats
	Wall     time.Duration
	Messages int64
}

// Run executes the load and gathers latency statistics per operation type.
func (w *World) Run(ctx context.Context, load Load) (Results, error) {
	load = load.withDefaults()
	if len(w.Objects) == 0 {
		return Results{}, fmt.Errorf("sim: world has no objects")
	}

	reg := metrics.NewRegistry()
	leaves := w.Dep.Leaves()

	// Pre-compute object indexes per leaf for locality targeting.
	perLeaf := make(map[msg.NodeID][]int)
	for i, leaf := range w.objEntryLeaf {
		perLeaf[leaf] = append(perLeaf[leaf], i)
	}

	startMsgs := w.Messages()
	startWall := time.Now()

	var wg sync.WaitGroup
	errCh := make(chan error, load.Workers)
	for wk := 0; wk < load.Workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(load.Seed + int64(wk)*7919))
			// Each worker is a client pinned to one entry leaf,
			// like the paper's per-server load shares.
			entry := leaves[wk%len(leaves)]
			cl, err := client.New(w.Net, msg.NodeID(fmt.Sprintf("gen-%d-%d", load.Seed, wk)), entry, client.Options{Timeout: 30 * time.Second})
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			if err := w.workerLoop(ctx, cl, entry, rng, load, perLeaf, reg); err != nil {
				errCh <- err
			}
		}(wk)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return Results{}, err
		}
	}

	wall := time.Since(startWall)
	res := Results{
		PerOp:    make(map[string]OpStats),
		Wall:     wall,
		Messages: w.Messages() - startMsgs,
	}
	for _, op := range []string{"update", "pos_local", "pos_remote", "range_local", "range_remote", "neighbor"} {
		h := reg.Histogram(op)
		if h.Count() == 0 {
			continue
		}
		res.PerOp[op] = OpStats{
			Count:      h.Count(),
			Errors:     reg.Counter(op + "_errors").Value(),
			MeanMs:     h.Mean() * 1000,
			P99Ms:      h.Percentile(0.99) * 1000,
			Throughput: float64(h.Count()) / wall.Seconds(),
		}
	}
	return res, nil
}

// workerLoop issues OpsPerWorker operations according to the mix.
func (w *World) workerLoop(ctx context.Context, cl *client.Client, entry msg.NodeID,
	rng *rand.Rand, load Load, perLeaf map[msg.NodeID][]int, reg *metrics.Registry) error {

	total := load.Mix.Updates + load.Mix.PosQueries + load.Mix.RangeQuery + load.Mix.Neighbor
	if total <= 0 {
		return fmt.Errorf("sim: empty mix")
	}
	entryArea := geo.Rect{}
	if srv, ok := w.Dep.Server(entry); ok {
		entryArea = srv.Config().SA.Bounds()
	}
	rootArea := w.Config.Spec.RootArea

	for op := 0; op < load.OpsPerWorker; op++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		local := rng.Float64() < load.Locality
		r := rng.Float64() * total
		switch {
		case r < load.Mix.Updates:
			// Updates are always local (paper): pick an object of
			// this leaf and nudge it without leaving the area.
			idxs := perLeaf[entry]
			if len(idxs) == 0 {
				continue
			}
			i := idxs[rng.Intn(len(idxs))]
			obj := w.Objects[i]
			p := jitterWithin(w.objPositions[i], 10, entryArea, rng)
			s := core.Sighting{OID: obj.OID(), T: time.Now(), Pos: p, SensAcc: 5}
			observe(reg, "update", func() error { return obj.Update(ctx, s) })

		case r < load.Mix.Updates+load.Mix.PosQueries:
			i := w.pickObject(rng, entry, local, perLeaf)
			name := "pos_remote"
			if w.objEntryLeaf[i] == entry {
				name = "pos_local"
			}
			observe(reg, name, func() error {
				_, err := cl.PosQuery(ctx, w.Objects[i].OID())
				return err
			})

		case r < load.Mix.Updates+load.Mix.PosQueries+load.Mix.RangeQuery:
			area := w.pickArea(rng, entryArea, rootArea, local, load.RangeSize)
			name := "range_remote"
			if entryArea.ContainsRect(area) {
				name = "range_local"
			}
			observe(reg, name, func() error {
				_, err := cl.RangeQueryRect(ctx, area, 100, 0.5)
				return err
			})

		default:
			p := randIn(rootArea, rng)
			observe(reg, "neighbor", func() error {
				_, err := cl.NeighborQuery(ctx, p, 100, 0)
				return err
			})
		}
	}
	return nil
}

// pickObject selects a target object honoring locality.
func (w *World) pickObject(rng *rand.Rand, entry msg.NodeID, local bool, perLeaf map[msg.NodeID][]int) int {
	if local {
		if idxs := perLeaf[entry]; len(idxs) > 0 {
			return idxs[rng.Intn(len(idxs))]
		}
	}
	// Remote: draw until the object is not on the entry leaf (bounded
	// attempts; with four leaves the expected number is ~1.3).
	for attempt := 0; attempt < 8; attempt++ {
		i := rng.Intn(len(w.Objects))
		if w.objEntryLeaf[i] != entry {
			return i
		}
	}
	return rng.Intn(len(w.Objects))
}

// pickArea selects a square query area honoring locality.
func (w *World) pickArea(rng *rand.Rand, entryArea, rootArea geo.Rect, local bool, size float64) geo.Rect {
	host := rootArea
	if local && !entryArea.Empty() {
		host = entryArea
	}
	// Keep the square fully inside the host area.
	maxX := host.Max.X - size
	maxY := host.Max.Y - size
	if maxX <= host.Min.X || maxY <= host.Min.Y {
		return host
	}
	x := host.Min.X + rng.Float64()*(maxX-host.Min.X)
	y := host.Min.Y + rng.Float64()*(maxY-host.Min.Y)
	return geo.R(x, y, x+size, y+size)
}

func randIn(r geo.Rect, rng *rand.Rand) geo.Point {
	return geo.Pt(r.Min.X+rng.Float64()*r.Width(), r.Min.Y+rng.Float64()*r.Height())
}

// jitterWithin moves p by up to d in a random direction, clamped strictly
// inside area. The clamp target is inset so a jittered update can never
// land exactly on the (half-open) service-area boundary, which would
// trigger a handover — Table 2's updates are always local, as in the paper.
func jitterWithin(p geo.Point, d float64, area geo.Rect, rng *rand.Rand) geo.Point {
	q := geo.Pt(p.X+(rng.Float64()*2-1)*d, p.Y+(rng.Float64()*2-1)*d)
	if area.Empty() {
		return q
	}
	inset := geo.Rect{
		Min: geo.Point{X: area.Min.X, Y: area.Min.Y},
		Max: geo.Point{X: area.Max.X - 1e-6, Y: area.Max.Y - 1e-6},
	}
	return inset.ClampPoint(q)
}

// observe times one operation into the named histogram.
func observe(reg *metrics.Registry, name string, f func() error) {
	start := time.Now()
	err := f()
	reg.Histogram(name).ObserveDuration(time.Since(start))
	if err != nil {
		reg.Counter(name + "_errors").Inc()
	}
}
