package sim

import (
	"context"
	"testing"
	"time"

	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/server"
)

func smallWorld(t *testing.T, hopLatency time.Duration) *World {
	t.Helper()
	w, err := NewWorld(Config{
		Spec: hierarchy.Spec{
			RootArea: geo.R(0, 0, 1500, 1500),
			Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
		},
		NumObjects: 200,
		HopLatency: hopLatency,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestWorldRegistersObjects(t *testing.T) {
	w := smallWorld(t, 0)
	if len(w.Objects) != 200 {
		t.Fatalf("objects = %d", len(w.Objects))
	}
	total := 0
	for _, leaf := range w.Dep.Leaves() {
		srv, _ := w.Dep.Server(leaf)
		total += srv.SightingCount()
	}
	if total != 200 {
		t.Errorf("sightings across leaves = %d", total)
	}
	root, _ := w.Dep.Server("r")
	waitRoot := time.Now().Add(5 * time.Second)
	for root.VisitorCount() != 200 && time.Now().Before(waitRoot) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := root.VisitorCount(); got != 200 {
		t.Errorf("root visitors = %d", got)
	}
	if w.Messages() == 0 {
		t.Error("message counter never incremented")
	}
}

func TestRunMixedLoad(t *testing.T) {
	w := smallWorld(t, 0)
	res, err := w.Run(context.Background(), Load{
		Workers:      4,
		OpsPerWorker: 100,
		Mix:          Mix{Updates: 1, PosQueries: 1, RangeQuery: 1},
		Locality:     0.5,
		RangeSize:    100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var totalOps, totalErrs int64
	for name, st := range res.PerOp {
		totalOps += st.Count
		totalErrs += st.Errors
		if st.MeanMs < 0 {
			t.Errorf("%s mean latency %v", name, st.MeanMs)
		}
		if st.Throughput <= 0 {
			t.Errorf("%s throughput %v", name, st.Throughput)
		}
	}
	if totalOps != 400 {
		t.Errorf("total ops = %d, want 400", totalOps)
	}
	if totalErrs != 0 {
		t.Errorf("errors = %d", totalErrs)
	}
	if res.Messages <= 0 {
		t.Error("no messages counted during load")
	}
}

func TestLocalityControlsRemoteShare(t *testing.T) {
	w := smallWorld(t, 0)
	resLocal, err := w.Run(context.Background(), Load{
		Workers: 4, OpsPerWorker: 100,
		Mix: Mix{PosQueries: 1}, Locality: 1.0, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if remote := resLocal.PerOp["pos_remote"].Count; remote != 0 {
		t.Errorf("locality=1 produced %d remote queries", remote)
	}
	resRemote, err := w.Run(context.Background(), Load{
		Workers: 4, OpsPerWorker: 100,
		Mix: Mix{PosQueries: 1}, Locality: 0.0, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if local := resRemote.PerOp["pos_local"].Count; local > 20 {
		t.Errorf("locality=0 produced %d local queries", local)
	}
}

func TestHopLatencyMakesRemoteSlower(t *testing.T) {
	w := smallWorld(t, 2*time.Millisecond)
	res, err := w.Run(context.Background(), Load{
		Workers: 4, OpsPerWorker: 60,
		Mix: Mix{PosQueries: 1}, Locality: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	local, lok := res.PerOp["pos_local"]
	remote, rok := res.PerOp["pos_remote"]
	if !lok || !rok {
		t.Fatalf("missing op stats: %+v", res.PerOp)
	}
	// A local query is client→leaf→client (2 hops); a remote one adds at
	// least 4 server hops. With 2 ms per hop the gap must be clear.
	if remote.MeanMs <= local.MeanMs {
		t.Errorf("remote (%.2f ms) not slower than local (%.2f ms)", remote.MeanMs, local.MeanMs)
	}
}

func TestNeighborLoadRuns(t *testing.T) {
	w := smallWorld(t, 0)
	res, err := w.Run(context.Background(), Load{
		Workers: 2, OpsPerWorker: 20,
		Mix: Mix{Neighbor: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerOp["neighbor"]
	if st.Count != 40 || st.Errors != 0 {
		t.Errorf("neighbor stats = %+v", st)
	}
}

func TestWorldDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.NumObjects != 10_000 || cfg.Spec.RootArea.Width() != 1500 {
		t.Errorf("defaults = %+v", cfg)
	}
	l := Load{}.withDefaults()
	if l.Workers == 0 || l.OpsPerWorker == 0 || l.RangeSize != 50 {
		t.Errorf("load defaults = %+v", l)
	}
	if err := serverOptsSmoke(); err != nil {
		t.Error(err)
	}
}

// serverOptsSmoke ensures the zero server.Options deploys (guards against
// accidental required fields creeping in).
func serverOptsSmoke() error {
	_ = server.Options{}
	return nil
}
