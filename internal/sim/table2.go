package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// This file provides the pre-shaped operations of the paper's Table 2
// experiment on the default testbed (1.5 km × 1.5 km root area, one root
// plus four leaf quarters, Fig. 8): local updates, local/remote position
// queries and range queries touching a chosen number of leaf servers.
//
// The helpers require the default quadrant deployment; they return an error
// on other shapes.

// table2Clients lazily creates one measurement client per leaf.
func (w *World) table2Clients() ([]*client.Client, error) {
	w.t2mu.Lock()
	defer w.t2mu.Unlock()
	if w.t2clients != nil {
		return w.t2clients, nil
	}
	leaves := w.Dep.Leaves()
	if len(leaves) != 4 || w.Config.Spec.RootArea != geo.R(0, 0, 1500, 1500) {
		return nil, fmt.Errorf("sim: table 2 helpers need the default 4-leaf 1.5 km testbed")
	}
	for i, leaf := range leaves {
		c, err := client.New(w.Net, msg.NodeID(fmt.Sprintf("t2-client-%d", i)), leaf, client.Options{Timeout: 30 * time.Second})
		if err != nil {
			return nil, err
		}
		w.t2clients = append(w.t2clients, c)
	}
	return w.t2clients, nil
}

// UpdateRandomLocal sends a position update for a random object, jittered
// within its current leaf so the update never triggers a handover — Table 2
// updates are always local in the paper's architecture.
func (w *World) UpdateRandomLocal(ctx context.Context, rng *rand.Rand) error {
	i := rng.Intn(len(w.Objects))
	obj := w.Objects[i]
	base := w.objPositions[i]
	leaf := w.objEntryLeaf[i]
	srv, ok := w.Dep.Server(leaf)
	if !ok {
		return fmt.Errorf("sim: missing server %s", leaf)
	}
	p := jitterWithin(base, 10, srv.Config().SA.Bounds(), rng)
	s := core.Sighting{OID: obj.OID(), T: time.Now(), Pos: p, SensAcc: 5}
	return obj.Update(ctx, s)
}

// PosQueryFrom issues a position query through the leaf-0 client; local
// selects a target object whose agent is that same leaf, remote one from
// the diagonally opposite quadrant.
func (w *World) PosQueryFrom(ctx context.Context, rng *rand.Rand, local bool) error {
	clients, err := w.table2Clients()
	if err != nil {
		return err
	}
	entry := w.Dep.Leaves()[0]
	far := w.Dep.Leaves()[3]
	want := entry
	if !local {
		want = far
	}
	for attempt := 0; attempt < 64; attempt++ {
		i := rng.Intn(len(w.Objects))
		if w.objEntryLeaf[i] != want {
			continue
		}
		_, qerr := clients[0].PosQuery(ctx, w.Objects[i].OID())
		return qerr
	}
	return fmt.Errorf("sim: no object found on leaf %s", want)
}

// RangeQueryServers issues a 50 m × 50 m range query through the leaf-0
// client shaped to involve the given number of servers:
//
//	0 — local: the area lies inside the entry leaf itself;
//	1 — remote, one leaf: inside the diagonally opposite quadrant;
//	2 — remote, two leaves: straddling one internal boundary;
//	4 — remote, four leaves: centered on the root midpoint.
func (w *World) RangeQueryServers(ctx context.Context, rng *rand.Rand, servers int) error {
	clients, err := w.table2Clients()
	if err != nil {
		return err
	}
	const size = 50.0
	var area geo.Rect
	switch servers {
	case 0:
		x := 100 + rng.Float64()*400
		y := 100 + rng.Float64()*400
		area = geo.R(x, y, x+size, y+size)
	case 1:
		x := 900 + rng.Float64()*400
		y := 900 + rng.Float64()*400
		area = geo.R(x, y, x+size, y+size)
	case 2:
		x := 900 + rng.Float64()*400
		area = geo.R(x, 725, x+size, 725+size)
	case 4:
		area = geo.R(725, 725, 725+size, 725+size)
	default:
		return fmt.Errorf("sim: unsupported server count %d", servers)
	}
	_, qerr := clients[0].RangeQueryRect(ctx, area, 100, 0.5)
	return qerr
}

// t2state holds the lazily created table-2 clients.
type t2state struct {
	t2mu      sync.Mutex
	t2clients []*client.Client
}
