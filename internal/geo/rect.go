package geo

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle [MinX, MaxX] × [MinY, MaxY]. Rectangles
// are the workhorse service-area and query-area shape: the paper's prototype
// partitions a square service area into rectangular quarters, and its range
// query experiments use square query areas.
type Rect struct {
	Min Point
	Max Point
}

// R constructs a rectangle from two corner coordinates, normalizing the
// corner order.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// RectAround returns the square of side 2*half centered at c. It is used to
// turn a point query into an expanding search window.
func RectAround(c Point, half float64) Rect {
	return Rect{Min: Point{c.X - half, c.Y - half}, Max: Point{c.X + half, c.Y + half}}
}

// Width returns the extent of r along x.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent of r along y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Empty reports whether r encloses no area.
func (r Rect) Empty() bool { return r.Max.X <= r.Min.X || r.Max.Y <= r.Min.Y }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies in r. Points on the minimum edges are
// inside and points on the maximum edges are outside, so that a partition of
// a parent rectangle into child rectangles assigns every point to exactly
// one child — the paper's requirement that sibling service areas do not
// overlap while their union is the parent area.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// ContainsClosed reports whether p lies in the closed rectangle, including
// all edges. Spatial index searches use the closed test so that objects
// sitting exactly on a query boundary are returned.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether r fully contains s.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share any area.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// IntersectsClosed reports rectangle overlap including shared boundaries.
// The spatial indexes use it for pruning: degenerate (zero-area) point
// rectangles and bounds touching a query edge must still count, because
// index searches are closed.
func (r Rect) IntersectsClosed(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// GrowToInclude widens r in place so the closed rectangle covers p. It is
// the shared maintenance step of the lazily-tightened bounding rectangles
// kept by the spatial indexes and the sharded stores.
func (r *Rect) GrowToInclude(p Point) {
	if p.X < r.Min.X {
		r.Min.X = p.X
	}
	if p.Y < r.Min.Y {
		r.Min.Y = p.Y
	}
	if p.X > r.Max.X {
		r.Max.X = p.X
	}
	if p.Y > r.Max.Y {
		r.Max.Y = p.Y
	}
}

// Intersect returns the intersection of r and s; the result may be Empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Enlarge grows r by margin on every side. It implements the paper's
// Enlarge(area, reqAcc) used in range-query forwarding (Algorithm 6-5), which
// widens the query area so agents of boundary candidates are not missed.
func (r Rect) Enlarge(margin float64) Rect {
	return Rect{
		Min: Point{r.Min.X - margin, r.Min.Y - margin},
		Max: Point{r.Max.X + margin, r.Max.Y + margin},
	}
}

// ClampPoint returns the point of r closest to p.
func (r Rect) ClampPoint(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// DistToPoint returns the minimum distance from p to r (zero if inside).
func (r Rect) DistToPoint(p Point) float64 { return r.ClampPoint(p).Dist(p) }

// Poly converts r into an equivalent counter-clockwise polygon.
func (r Rect) Poly() Polygon {
	return Polygon{
		{r.Min.X, r.Min.Y},
		{r.Max.X, r.Min.Y},
		{r.Max.X, r.Max.Y},
		{r.Min.X, r.Max.Y},
	}
}

// SplitGrid partitions r into rows × cols equal child rectangles in
// row-major order. It is the service-area partitioning primitive used by the
// hierarchy builder; children tile r exactly (requirement (1) of Section 4)
// and do not overlap under the half-open Contains test (requirement (2)).
func (r Rect) SplitGrid(rows, cols int) []Rect {
	if rows <= 0 || cols <= 0 {
		return nil
	}
	out := make([]Rect, 0, rows*cols)
	w, h := r.Width()/float64(cols), r.Height()/float64(rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			minX := r.Min.X + float64(j)*w
			minY := r.Min.Y + float64(i)*h
			maxX := minX + w
			maxY := minY + h
			// Snap outer edges to the parent exactly so the union
			// is the parent area without floating-point slivers.
			if j == cols-1 {
				maxX = r.Max.X
			}
			if i == rows-1 {
				maxY = r.Max.Y
			}
			out = append(out, Rect{Min: Point{minX, minY}, Max: Point{maxX, maxY}})
		}
	}
	return out
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s-%s]", r.Min, r.Max)
}
