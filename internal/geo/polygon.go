package geo

import "math"

// Polygon is a simple polygon given by its vertices in order. The paper
// allows a query or service area to be "an arbitrary connected polygon given
// by the geographic coordinates of its corners"; we support simple polygons
// for containment and area, and convex polygons for clipping.
type Polygon []Point

// Area returns the unsigned area of the polygon (shoelace formula).
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// SignedArea returns the signed area: positive for counter-clockwise vertex
// order, negative for clockwise.
func (pg Polygon) SignedArea() float64 {
	if len(pg) < 3 {
		return 0
	}
	sum := 0.0
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		sum += p.Cross(q)
	}
	return sum / 2
}

// CCW returns the polygon in counter-clockwise orientation, reversing the
// vertex order if necessary.
func (pg Polygon) CCW() Polygon {
	if pg.SignedArea() >= 0 {
		return pg
	}
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[len(pg)-1-i] = p
	}
	return out
}

// Contains reports whether p lies inside the polygon (boundary counts as
// inside), using the ray-crossing test. Works for arbitrary simple polygons.
func (pg Polygon) Contains(p Point) bool {
	if len(pg) < 3 {
		return false
	}
	inside := false
	for i, a := range pg {
		b := pg[(i+1)%len(pg)]
		// Boundary check: p on segment a-b.
		if onSegment(a, b, p) {
			return true
		}
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xCross := a.X + (p.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// onSegment reports whether p lies on the closed segment a-b.
func onSegment(a, b, p Point) bool {
	const eps = 1e-9
	if math.Abs(b.Sub(a).Cross(p.Sub(a))) > eps*(1+a.Dist(b)) {
		return false
	}
	return p.X >= math.Min(a.X, b.X)-eps && p.X <= math.Max(a.X, b.X)+eps &&
		p.Y >= math.Min(a.Y, b.Y)-eps && p.Y <= math.Max(a.Y, b.Y)+eps
}

// Bounds returns the axis-aligned bounding rectangle of the polygon.
func (pg Polygon) Bounds() Rect {
	if len(pg) == 0 {
		return Rect{}
	}
	r := Rect{Min: pg[0], Max: pg[0]}
	for _, p := range pg[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// ClipRect clips the polygon to an axis-aligned rectangle using the
// Sutherland–Hodgman algorithm. The input must be convex for the output to
// be exact; rectangles and the convex query areas used throughout the
// service satisfy this. The result is the intersection polygon (possibly
// empty).
func (pg Polygon) ClipRect(r Rect) Polygon {
	out := pg.CCW()
	// Clip against each of the four half-planes of r.
	out = clipHalfPlane(out, func(p Point) bool { return p.X >= r.Min.X }, func(a, b Point) Point {
		t := (r.Min.X - a.X) / (b.X - a.X)
		return a.Lerp(b, t)
	})
	out = clipHalfPlane(out, func(p Point) bool { return p.X <= r.Max.X }, func(a, b Point) Point {
		t := (r.Max.X - a.X) / (b.X - a.X)
		return a.Lerp(b, t)
	})
	out = clipHalfPlane(out, func(p Point) bool { return p.Y >= r.Min.Y }, func(a, b Point) Point {
		t := (r.Min.Y - a.Y) / (b.Y - a.Y)
		return a.Lerp(b, t)
	})
	out = clipHalfPlane(out, func(p Point) bool { return p.Y <= r.Max.Y }, func(a, b Point) Point {
		t := (r.Max.Y - a.Y) / (b.Y - a.Y)
		return a.Lerp(b, t)
	})
	return out
}

// clipHalfPlane clips polygon vertices against one half-plane; inside
// reports whether a point is kept and cross computes the boundary crossing.
func clipHalfPlane(pg Polygon, inside func(Point) bool, cross func(a, b Point) Point) Polygon {
	if len(pg) == 0 {
		return nil
	}
	out := make(Polygon, 0, len(pg)+4)
	for i, cur := range pg {
		prev := pg[(i+len(pg)-1)%len(pg)]
		curIn, prevIn := inside(cur), inside(prev)
		switch {
		case curIn && prevIn:
			out = append(out, cur)
		case curIn && !prevIn:
			out = append(out, cross(prev, cur), cur)
		case !curIn && prevIn:
			out = append(out, cross(prev, cur))
		}
	}
	if len(out) < 3 {
		return nil
	}
	return out
}

// IntersectRectArea returns the area of the intersection of the polygon
// (assumed convex) with rectangle r.
func (pg Polygon) IntersectRectArea(r Rect) float64 {
	return pg.ClipRect(r).Area()
}

// Centroid returns the centroid of the polygon.
func (pg Polygon) Centroid() Point {
	if len(pg) == 0 {
		return Point{}
	}
	a := pg.SignedArea()
	if math.Abs(a) < 1e-12 {
		// Degenerate: average vertices.
		var c Point
		for _, p := range pg {
			c = c.Add(p)
		}
		return c.Scale(1 / float64(len(pg)))
	}
	var cx, cy float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		w := p.Cross(q)
		cx += (p.X + q.X) * w
		cy += (p.Y + q.Y) * w
	}
	return Point{cx / (6 * a), cy / (6 * a)}
}

// RegularPolygon returns an n-gon approximating a circle of radius rad
// centered at c, in counter-clockwise order. Useful for building non-
// rectangular query areas in tests and examples.
func RegularPolygon(c Point, rad float64, n int) Polygon {
	if n < 3 {
		n = 3
	}
	out := make(Polygon, n)
	for i := range out {
		a := 2 * math.Pi * float64(i) / float64(n)
		out[i] = Point{c.X + rad*math.Cos(a), c.Y + rad*math.Sin(a)}
	}
	return out
}
