package geo

import "math"

// Circle is a disk of radius R centered at C. A tracked object's location
// area (Fig. 2 of the paper) is the circle around the stored position with
// the accuracy value as radius: the object is guaranteed to be inside it.
type Circle struct {
	C Point
	R float64
}

// Area returns the area of the disk.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// Contains reports whether p lies in the closed disk.
func (c Circle) Contains(p Point) bool { return c.C.Dist2(p) <= c.R*c.R+1e-12 }

// Bounds returns the axis-aligned bounding rectangle of the disk.
func (c Circle) Bounds() Rect {
	return Rect{
		Min: Point{c.C.X - c.R, c.C.Y - c.R},
		Max: Point{c.C.X + c.R, c.C.Y + c.R},
	}
}

// IntersectsRect reports whether the disk and rectangle share any area.
func (c Circle) IntersectsRect(r Rect) bool { return r.DistToPoint(c.C) <= c.R }

// IntersectPolyArea returns the exact area of the intersection of the disk
// with a simple polygon. This is SIZE(a ∩ ld(o)) in the paper's overlap
// definition (Section 3.2):
//
//	Overlap(a, o) = SIZE(a ∩ ld(o)) / SIZE(ld(o))
//
// The algorithm sums, for every directed polygon edge (v1, v2), the signed
// area of the intersection of the triangle (C, v1, v2) with the disk; for a
// simple polygon the contributions of edges seen "backwards" cancel exactly,
// leaving the intersection area. Each triangle/disk piece is a combination
// of straight triangles and circular sectors.
func (c Circle) IntersectPolyArea(pg Polygon) float64 {
	if len(pg) < 3 || c.R <= 0 {
		return 0
	}
	total := 0.0
	for i, v1 := range pg {
		v2 := pg[(i+1)%len(pg)]
		total += c.edgeContribution(v1, v2)
	}
	return math.Abs(total)
}

// edgeContribution returns the signed area of triangle (c.C, v1, v2)
// clipped to the disk.
func (c Circle) edgeContribution(v1, v2 Point) float64 {
	a := v1.Sub(c.C)
	b := v2.Sub(c.C)
	r2 := c.R * c.R
	aIn := a.Norm2() <= r2
	bIn := b.Norm2() <= r2

	cross := a.Cross(b)
	if aIn && bIn {
		// Whole triangle inside the disk.
		return cross / 2
	}

	// Find intersections of segment a-b (in circle-centered coordinates)
	// with the circle of radius R.
	d := b.Sub(a)
	dd := d.Norm2()
	if dd == 0 {
		return 0
	}
	// Solve |a + t d|^2 = r^2 for t in [0,1].
	proj := -a.Dot(d) / dd
	disc := proj*proj - (a.Norm2()-r2)/dd
	if disc <= 0 {
		// Segment entirely outside: contribution is the circular
		// sector between directions a and b.
		return c.sectorArea(a, b)
	}
	sq := math.Sqrt(disc)
	t1 := proj - sq
	t2 := proj + sq

	switch {
	case aIn && !bIn:
		// Exits the disk at t2: triangle part up to the exit point,
		// then a sector from the exit direction to b.
		x := a.Add(d.Scale(clamp01(t2)))
		return a.Cross(x)/2 + c.sectorArea(x, b)
	case !aIn && bIn:
		// Enters the disk at t1: sector from a to the entry point,
		// then triangle from entry to b.
		x := a.Add(d.Scale(clamp01(t1)))
		return c.sectorArea(a, x) + x.Cross(b)/2
	default:
		// Both endpoints outside. The chord may still pass through
		// the disk if t1, t2 lie within (0,1).
		if t1 >= 1 || t2 <= 0 {
			return c.sectorArea(a, b)
		}
		x1 := a.Add(d.Scale(clamp01(t1)))
		x2 := a.Add(d.Scale(clamp01(t2)))
		return c.sectorArea(a, x1) + x1.Cross(x2)/2 + c.sectorArea(x2, b)
	}
}

// sectorArea returns the signed area of the circular sector of the disk
// swept from direction u to direction v (both relative to the center),
// following the orientation of the angle between them.
func (c Circle) sectorArea(u, v Point) float64 {
	ang := math.Atan2(u.Cross(v), u.Dot(v))
	return 0.5 * c.R * c.R * ang
}

func clamp01(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// IntersectRectArea returns the exact area of the intersection of the disk
// with rectangle r, with fast paths for the disjoint and fully-contained
// cases.
func (c Circle) IntersectRectArea(r Rect) float64 {
	if !c.IntersectsRect(r) {
		return 0
	}
	// Fast path: rectangle's farthest corner inside the disk means the
	// rectangle is fully covered.
	if c.coversRect(r) {
		return r.Area()
	}
	// Fast path: disk fully inside the rectangle.
	if r.ContainsRect(c.Bounds()) {
		return c.Area()
	}
	return c.IntersectPolyArea(r.Poly())
}

// coversRect reports whether the disk fully contains rectangle r.
func (c Circle) coversRect(r Rect) bool {
	for _, p := range []Point{
		{r.Min.X, r.Min.Y}, {r.Max.X, r.Min.Y},
		{r.Max.X, r.Max.Y}, {r.Min.X, r.Max.Y},
	} {
		if !c.Contains(p) {
			return false
		}
	}
	return true
}
