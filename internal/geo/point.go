// Package geo provides the planar geometry substrate for the location
// service: points, rectangles, simple polygons and circles, together with
// the exact area computations required by the paper's query semantics
// (fractional overlap of a circular location area with a query polygon,
// Section 3.2) and a WGS84 helper for converting geographic coordinates to
// the local metric plane the service operates in.
//
// All coordinates are in meters within a locally projected plane. The paper
// assumes WGS84 geographic coordinates at the API boundary; Project and
// Unproject convert between the two using an equirectangular projection
// around a reference origin, which is accurate to well below typical sensor
// accuracy (10 cm – 10 m) for service areas up to a few hundred kilometers.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in the local plane, in meters.
type Point struct {
	X float64
	Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product of p and q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q. This is the paper's
// DISTANCE function over the local plane.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 { return p.Sub(q).Norm2() }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// earthRadiusM is the WGS84 mean earth radius in meters.
const earthRadiusM = 6371008.8

// LatLon is a geographic coordinate (degrees) in the WGS84 datum, the
// coordinate system the paper assumes for sighting records.
type LatLon struct {
	Lat float64
	Lon float64
}

// Projection converts between WGS84 geographic coordinates and the local
// metric plane using an equirectangular projection centered at Origin.
type Projection struct {
	Origin LatLon
}

// Project maps a geographic coordinate to the local plane in meters.
func (pr Projection) Project(ll LatLon) Point {
	latRad := ll.Lat * math.Pi / 180
	dLat := (ll.Lat - pr.Origin.Lat) * math.Pi / 180
	dLon := (ll.Lon - pr.Origin.Lon) * math.Pi / 180
	_ = latRad
	cos := math.Cos(pr.Origin.Lat * math.Pi / 180)
	return Point{X: earthRadiusM * dLon * cos, Y: earthRadiusM * dLat}
}

// Unproject maps a local-plane point back to a geographic coordinate.
func (pr Projection) Unproject(p Point) LatLon {
	cos := math.Cos(pr.Origin.Lat * math.Pi / 180)
	return LatLon{
		Lat: pr.Origin.Lat + (p.Y/earthRadiusM)*180/math.Pi,
		Lon: pr.Origin.Lon + (p.X/(earthRadiusM*cos))*180/math.Pi,
	}
}
