package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {5, 5}, {2, 7}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull = %v", hull)
	}
	if math.Abs(hull.Area()-100) > 1e-9 {
		t.Errorf("hull area = %v", hull.Area())
	}
	if hull.SignedArea() <= 0 {
		t.Error("hull not counter-clockwise")
	}
	if !hull.IsConvex() {
		t.Error("hull not convex")
	}
}

func TestConvexHullCollinear(t *testing.T) {
	pts := []Point{{0, 0}, {5, 0}, {10, 0}, {10, 10}, {0, 10}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Errorf("collinear point kept: %v", hull)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Errorf("nil hull = %v", got)
	}
	if got := ConvexHull([]Point{{1, 1}}); len(got) != 1 {
		t.Errorf("single-point hull = %v", got)
	}
	// All points identical.
	if got := ConvexHull([]Point{{1, 1}, {1, 1}, {1, 1}}); len(got) != 1 {
		t.Errorf("identical-point hull = %v", got)
	}
}

func TestConvexHullProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			t.Fatalf("trial %d: degenerate hull from %d points", trial, n)
		}
		if !hull.IsConvex() {
			t.Fatalf("trial %d: hull not convex: %v", trial, hull)
		}
		if hull.SignedArea() <= 0 {
			t.Fatalf("trial %d: hull not ccw", trial)
		}
		// Every input point lies inside or on the hull.
		for _, p := range pts {
			if !hull.Contains(p) {
				t.Fatalf("trial %d: point %v outside hull", trial, p)
			}
		}
	}
}

func TestIsConvex(t *testing.T) {
	tests := []struct {
		name string
		pg   Polygon
		want bool
	}{
		{"square", Polygon{{0, 0}, {1, 0}, {1, 1}, {0, 1}}, true},
		{"square cw", Polygon{{0, 0}, {0, 1}, {1, 1}, {1, 0}}, true},
		{"triangle", Polygon{{0, 0}, {4, 0}, {0, 3}}, true},
		{"L-shape", Polygon{{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}}, false},
		{"degenerate", Polygon{{0, 0}, {1, 1}}, false},
		{"with collinear edge", Polygon{{0, 0}, {1, 0}, {2, 0}, {2, 2}, {0, 2}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.pg.IsConvex(); got != tt.want {
				t.Errorf("IsConvex = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestConvexHullIdempotentProperty(t *testing.T) {
	f := func(seeds []int16) bool {
		if len(seeds) < 6 {
			return true
		}
		pts := make([]Point, 0, len(seeds)/2)
		for i := 0; i+1 < len(seeds); i += 2 {
			pts = append(pts, Pt(float64(seeds[i]%100), float64(seeds[i+1]%100)))
		}
		h1 := ConvexHull(pts)
		h2 := ConvexHull(h1)
		return math.Abs(h1.Area()-h2.Area()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
