package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, -2)
	if got := p.Add(q); got != Pt(4, 2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -6-4 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 1), Pt(1, 1), 0},
		{"axis aligned", Pt(0, 0), Pt(3, 0), 3},
		{"pythagoras", Pt(0, 0), Pt(3, 4), 5},
		{"negative", Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); math.Abs(got-tt.want*tt.want) > 1e-9 {
				t.Errorf("Dist2 = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := Projection{Origin: LatLon{Lat: 48.7758, Lon: 9.1829}} // Stuttgart
	tests := []LatLon{
		{48.7758, 9.1829},
		{48.78, 9.19},
		{48.70, 9.10},
		{48.90, 9.30},
	}
	for _, ll := range tests {
		p := pr.Project(ll)
		back := pr.Unproject(p)
		if math.Abs(back.Lat-ll.Lat) > 1e-9 || math.Abs(back.Lon-ll.Lon) > 1e-9 {
			t.Errorf("round trip %v -> %v -> %v", ll, p, back)
		}
	}
}

func TestProjectionScale(t *testing.T) {
	// One degree of latitude is ~111 km everywhere.
	pr := Projection{Origin: LatLon{Lat: 48, Lon: 9}}
	p := pr.Project(LatLon{Lat: 49, Lon: 9})
	if p.Y < 110_000 || p.Y > 112_500 {
		t.Errorf("1 degree latitude projected to %.0f m, want ~111 km", p.Y)
	}
	if math.Abs(p.X) > 1e-6 {
		t.Errorf("longitude displacement = %v, want 0", p.X)
	}
	// One degree of longitude at 48N is ~74.6 km.
	q := pr.Project(LatLon{Lat: 48, Lon: 10})
	if q.X < 73_000 || q.X > 76_000 {
		t.Errorf("1 degree longitude projected to %.0f m, want ~74.6 km", q.X)
	}
}
