package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 10, 5)
	if got := r.Width(); got != 10 {
		t.Errorf("Width = %v", got)
	}
	if got := r.Height(); got != 5 {
		t.Errorf("Height = %v", got)
	}
	if got := r.Area(); got != 50 {
		t.Errorf("Area = %v", got)
	}
	if got := r.Center(); got != Pt(5, 2.5) {
		t.Errorf("Center = %v", got)
	}
	if r.Empty() {
		t.Error("non-empty rect reported Empty")
	}
	if !(Rect{}).Empty() {
		t.Error("zero rect not Empty")
	}
}

func TestRNormalizesCorners(t *testing.T) {
	r := R(10, 5, 0, 0)
	if r.Min != Pt(0, 0) || r.Max != Pt(10, 5) {
		t.Errorf("R did not normalize: %v", r)
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := R(0, 0, 10, 10)
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(0, 0), true},    // min corner inside
		{Pt(10, 10), false}, // max corner outside (half-open)
		{Pt(10, 5), false},
		{Pt(5, 10), false},
		{Pt(0, 9.999), true},
		{Pt(-0.001, 5), false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !r.ContainsClosed(Pt(10, 10)) {
		t.Error("ContainsClosed should include max corner")
	}
}

func TestRectIntersect(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false")
	}
	c := R(20, 20, 30, 30)
	if a.Intersects(c) {
		t.Error("disjoint rects reported intersecting")
	}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersection not empty")
	}
	// Touching edges share no area.
	d := R(10, 0, 20, 10)
	if a.Intersects(d) {
		t.Error("edge-touching rects reported intersecting")
	}
}

func TestRectUnion(t *testing.T) {
	a := R(0, 0, 1, 1)
	b := R(5, 5, 6, 6)
	if got := a.Union(b); got != R(0, 0, 6, 6) {
		t.Errorf("Union = %v", got)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty union = %v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("union empty = %v", got)
	}
}

func TestRectEnlarge(t *testing.T) {
	r := R(0, 0, 10, 10).Enlarge(5)
	if r != R(-5, -5, 15, 15) {
		t.Errorf("Enlarge = %v", r)
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := R(0, 0, 10, 10)
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 5), 0},
		{Pt(13, 5), 3},
		{Pt(5, -2), 2},
		{Pt(13, 14), 5},
	}
	for _, tt := range tests {
		if got := r.DistToPoint(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSplitGridTilesParent(t *testing.T) {
	parent := R(0, 0, 1500, 1500)
	for _, grid := range []struct{ rows, cols int }{{1, 1}, {2, 2}, {3, 3}, {1, 4}, {4, 1}, {2, 3}} {
		children := parent.SplitGrid(grid.rows, grid.cols)
		if len(children) != grid.rows*grid.cols {
			t.Fatalf("grid %v: %d children", grid, len(children))
		}
		var sum float64
		for _, c := range children {
			sum += c.Area()
			if !parent.ContainsRect(c) {
				t.Errorf("child %v outside parent", c)
			}
		}
		if math.Abs(sum-parent.Area()) > 1e-6 {
			t.Errorf("grid %v: child areas sum to %v, want %v", grid, sum, parent.Area())
		}
		// No two children overlap.
		for i := range children {
			for j := i + 1; j < len(children); j++ {
				if children[i].Intersects(children[j]) {
					t.Errorf("children %d and %d overlap", i, j)
				}
			}
		}
	}
}

func TestSplitGridAssignsEveryPointToExactlyOneChild(t *testing.T) {
	parent := R(0, 0, 1000, 1000)
	children := parent.SplitGrid(3, 3)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		p := Pt(rng.Float64()*1000, rng.Float64()*1000)
		count := 0
		for _, c := range children {
			if c.Contains(p) {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("point %v contained in %d children", p, count)
		}
	}
	// Boundary points between children must belong to exactly one child too.
	for _, p := range []Point{Pt(333.3333333333333, 500), Pt(500, 666.6666666666666), Pt(0, 0)} {
		count := 0
		for _, c := range children {
			if c.Contains(p) {
				count++
			}
		}
		if count != 1 {
			t.Errorf("boundary point %v contained in %d children", p, count)
		}
	}
}

func TestSplitGridDegenerate(t *testing.T) {
	if got := R(0, 0, 1, 1).SplitGrid(0, 3); got != nil {
		t.Errorf("SplitGrid(0,3) = %v", got)
	}
	if got := R(0, 0, 1, 1).SplitGrid(2, -1); got != nil {
		t.Errorf("SplitGrid(2,-1) = %v", got)
	}
}

func TestRectIntersectionAreaProperty(t *testing.T) {
	// area(a ∩ b) <= min(area(a), area(b)) and intersection is symmetric.
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 int16) bool {
		a := R(float64(x0), float64(y0), float64(x1), float64(y1))
		b := R(float64(x2), float64(y2), float64(x3), float64(y3))
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if ab != ba {
			return false
		}
		return ab.Area() <= math.Min(a.Area(), b.Area())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectPoly(t *testing.T) {
	r := R(1, 2, 4, 6)
	pg := r.Poly()
	if got := pg.Area(); math.Abs(got-r.Area()) > 1e-12 {
		t.Errorf("Poly area = %v, want %v", got, r.Area())
	}
	if pg.SignedArea() <= 0 {
		t.Error("Poly not counter-clockwise")
	}
	if got := pg.Bounds(); got != r {
		t.Errorf("Poly bounds = %v, want %v", got, r)
	}
}
