package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestPolygonArea(t *testing.T) {
	tests := []struct {
		name string
		pg   Polygon
		want float64
	}{
		{"unit square", Polygon{{0, 0}, {1, 0}, {1, 1}, {0, 1}}, 1},
		{"unit square cw", Polygon{{0, 0}, {0, 1}, {1, 1}, {1, 0}}, 1},
		{"triangle", Polygon{{0, 0}, {4, 0}, {0, 3}}, 6},
		{"degenerate", Polygon{{0, 0}, {1, 1}}, 0},
		{"empty", Polygon{}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.pg.Area(); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Area = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSignedAreaOrientation(t *testing.T) {
	ccw := Polygon{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	if ccw.SignedArea() <= 0 {
		t.Error("ccw polygon has non-positive signed area")
	}
	cw := Polygon{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	if cw.SignedArea() >= 0 {
		t.Error("cw polygon has non-negative signed area")
	}
	fixed := cw.CCW()
	if fixed.SignedArea() <= 0 {
		t.Error("CCW() did not fix orientation")
	}
	if got := ccw.CCW().SignedArea(); got != ccw.SignedArea() {
		t.Error("CCW() changed an already-ccw polygon")
	}
}

func TestPolygonContains(t *testing.T) {
	pg := Polygon{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(-1, 5), false},
		{Pt(11, 5), false},
		{Pt(5, -1), false},
		{Pt(0, 5), true},   // boundary counts as inside
		{Pt(10, 10), true}, // corner
		{Pt(5, 0), true},
	}
	for _, tt := range tests {
		if got := pg.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// L-shaped polygon.
	pg := Polygon{{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}}
	if !pg.Contains(Pt(2, 8)) {
		t.Error("point in L arm should be inside")
	}
	if pg.Contains(Pt(8, 8)) {
		t.Error("point in L notch should be outside")
	}
	if !pg.Contains(Pt(2, 2)) {
		t.Error("point in L base should be inside")
	}
}

func TestClipRect(t *testing.T) {
	square := Polygon{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	tests := []struct {
		name string
		clip Rect
		want float64
	}{
		{"full containment", R(-5, -5, 15, 15), 100},
		{"half", R(0, 0, 5, 10), 50},
		{"quarter", R(5, 5, 15, 15), 25},
		{"disjoint", R(20, 20, 30, 30), 0},
		{"sliver", R(9, 0, 11, 10), 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := square.ClipRect(tt.clip).Area()
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("clip area = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestClipRectTriangle(t *testing.T) {
	tri := Polygon{{0, 0}, {10, 0}, {0, 10}}
	// Clip to left half: result is a trapezoid of area 50 - 12.5 = 37.5.
	got := tri.ClipRect(R(0, 0, 5, 10)).Area()
	if math.Abs(got-37.5) > 1e-9 {
		t.Errorf("triangle clip area = %v, want 37.5", got)
	}
}

func TestClipRectClockwiseInput(t *testing.T) {
	cw := Polygon{{0, 0}, {0, 10}, {10, 10}, {10, 0}}
	got := cw.ClipRect(R(0, 0, 5, 5)).Area()
	if math.Abs(got-25) > 1e-9 {
		t.Errorf("cw clip area = %v, want 25", got)
	}
}

func TestIntersectRectAreaRandomizedAgainstRectIntersect(t *testing.T) {
	// For rectangle polygons the clip must agree with Rect.Intersect.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := R(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		b := R(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		if a.Empty() || b.Empty() {
			continue
		}
		want := a.Intersect(b).Area()
		got := a.Poly().IntersectRectArea(b)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("iter %d: clip area %v, rect intersect %v (a=%v b=%v)", i, got, want, a, b)
		}
	}
}

func TestCentroid(t *testing.T) {
	sq := Polygon{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	if got := sq.Centroid(); got.Dist(Pt(5, 5)) > 1e-9 {
		t.Errorf("square centroid = %v", got)
	}
	tri := Polygon{{0, 0}, {6, 0}, {0, 6}}
	if got := tri.Centroid(); got.Dist(Pt(2, 2)) > 1e-9 {
		t.Errorf("triangle centroid = %v", got)
	}
}

func TestRegularPolygonApproximatesCircle(t *testing.T) {
	c := Pt(5, 5)
	pg := RegularPolygon(c, 10, 256)
	want := math.Pi * 100
	if got := pg.Area(); math.Abs(got-want)/want > 0.01 {
		t.Errorf("256-gon area = %v, want ~%v", got, want)
	}
	if got := pg.Centroid(); got.Dist(c) > 1e-6 {
		t.Errorf("256-gon centroid = %v, want %v", got, c)
	}
	if got := RegularPolygon(c, 1, 2); len(got) != 3 {
		t.Errorf("n<3 clamped to %d vertices, want 3", len(got))
	}
}

func TestPolygonBounds(t *testing.T) {
	pg := Polygon{{3, 1}, {-2, 4}, {7, -5}}
	want := R(-2, -5, 7, 4)
	if got := pg.Bounds(); got != want {
		t.Errorf("Bounds = %v, want %v", got, want)
	}
	if got := (Polygon{}).Bounds(); !got.Empty() {
		t.Errorf("empty polygon bounds = %v", got)
	}
}
