package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestCircleBasics(t *testing.T) {
	c := Circle{C: Pt(5, 5), R: 3}
	if got, want := c.Area(), math.Pi*9; math.Abs(got-want) > 1e-12 {
		t.Errorf("Area = %v, want %v", got, want)
	}
	if !c.Contains(Pt(5, 5)) || !c.Contains(Pt(8, 5)) {
		t.Error("Contains failed for interior/boundary")
	}
	if c.Contains(Pt(8.01, 5)) {
		t.Error("Contains accepted exterior point")
	}
	if got := c.Bounds(); got != R(2, 2, 8, 8) {
		t.Errorf("Bounds = %v", got)
	}
}

func TestCircleIntersectsRect(t *testing.T) {
	c := Circle{C: Pt(0, 0), R: 5}
	tests := []struct {
		r    Rect
		want bool
	}{
		{R(-1, -1, 1, 1), true},     // circle covers rect
		{R(-10, -10, 10, 10), true}, // rect covers circle
		{R(4, 4, 6, 6), false},      // corner distance sqrt(32) > 5
		{R(3, 0, 10, 1), true},      // side overlap
		{R(6, 6, 8, 8), false},      // disjoint
		{R(5, -1, 9, 1), true},      // touching
	}
	for _, tt := range tests {
		if got := c.IntersectsRect(tt.r); got != tt.want {
			t.Errorf("IntersectsRect(%v) = %v, want %v", tt.r, got, tt.want)
		}
	}
}

func TestIntersectRectAreaExactCases(t *testing.T) {
	tests := []struct {
		name string
		c    Circle
		r    Rect
		want float64
	}{
		{"disjoint", Circle{Pt(0, 0), 1}, R(5, 5, 6, 6), 0},
		{"circle inside rect", Circle{Pt(5, 5), 1}, R(0, 0, 10, 10), math.Pi},
		{"rect inside circle", Circle{Pt(0, 0), 10}, R(-1, -1, 1, 1), 4},
		{"half plane", Circle{Pt(0, 0), 2}, R(0, -10, 10, 10), 2 * math.Pi},
		{"quarter", Circle{Pt(0, 0), 2}, R(0, 0, 10, 10), math.Pi},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.c.IntersectRectArea(tt.r)
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("area = %v, want %v", got, tt.want)
			}
		})
	}
}

// monteCarloIntersectArea estimates area(c ∩ r) by sampling.
func monteCarloIntersectArea(c Circle, r Rect, n int, rng *rand.Rand) float64 {
	box := c.Bounds().Intersect(r)
	if box.Empty() {
		return 0
	}
	hits := 0
	for i := 0; i < n; i++ {
		p := Pt(box.Min.X+rng.Float64()*box.Width(), box.Min.Y+rng.Float64()*box.Height())
		if c.Contains(p) && r.ContainsClosed(p) {
			hits++
		}
	}
	return box.Area() * float64(hits) / float64(n)
}

func TestIntersectRectAreaAgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		c := Circle{C: Pt(rng.Float64()*20-10, rng.Float64()*20-10), R: rng.Float64()*8 + 0.5}
		r := R(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*20-10)
		if r.Empty() {
			continue
		}
		exact := c.IntersectRectArea(r)
		approx := monteCarloIntersectArea(c, r, 60_000, rng)
		tol := 0.03*math.Max(exact, approx) + 0.05
		if math.Abs(exact-approx) > tol {
			t.Errorf("iter %d: exact %v vs monte carlo %v (c=%+v r=%v)", i, exact, approx, c, r)
		}
	}
}

func TestIntersectPolyAreaTriangle(t *testing.T) {
	// Circle centered at origin with r=1; triangle far away has zero overlap.
	c := Circle{C: Pt(0, 0), R: 1}
	far := Polygon{{10, 10}, {12, 10}, {10, 12}}
	if got := c.IntersectPolyArea(far); got > 1e-9 {
		t.Errorf("far triangle overlap = %v", got)
	}
	// Triangle containing the whole circle.
	big := Polygon{{-10, -10}, {10, -10}, {0, 15}}
	if got := c.IntersectPolyArea(big); math.Abs(got-math.Pi) > 1e-6 {
		t.Errorf("containing triangle overlap = %v, want pi", got)
	}
}

func TestIntersectPolyAreaOrientationInvariant(t *testing.T) {
	c := Circle{C: Pt(2, 2), R: 3}
	ccw := Polygon{{0, 0}, {5, 0}, {5, 5}, {0, 5}}
	cw := Polygon{{0, 0}, {0, 5}, {5, 5}, {5, 0}}
	a1 := c.IntersectPolyArea(ccw)
	a2 := c.IntersectPolyArea(cw)
	if math.Abs(a1-a2) > 1e-9 {
		t.Errorf("orientation changed area: %v vs %v", a1, a2)
	}
}

func TestIntersectPolyAreaConcave(t *testing.T) {
	// L-shape with the circle sitting in the notch: the signed-edge
	// algorithm must handle concave simple polygons.
	l := Polygon{{0, 0}, {10, 0}, {10, 4}, {4, 4}, {4, 10}, {0, 10}}
	c := Circle{C: Pt(7, 7), R: 1}
	if got := c.IntersectPolyArea(l); got > 1e-9 {
		t.Errorf("circle in notch overlap = %v, want 0", got)
	}
	c2 := Circle{C: Pt(2, 2), R: 1}
	if got := c2.IntersectPolyArea(l); math.Abs(got-math.Pi) > 1e-6 {
		t.Errorf("interior circle overlap = %v, want pi", got)
	}
}

func TestIntersectAreaMonotoneInRadius(t *testing.T) {
	r := R(0, 0, 10, 10)
	prev := 0.0
	for rad := 0.5; rad < 20; rad += 0.5 {
		c := Circle{C: Pt(3, 4), R: rad}
		a := c.IntersectRectArea(r)
		if a+1e-9 < prev {
			t.Fatalf("area decreased with radius: r=%v a=%v prev=%v", rad, a, prev)
		}
		prev = a
	}
	// Eventually the whole rect is covered.
	if math.Abs(prev-100) > 1e-6 {
		t.Errorf("large-radius area = %v, want 100", prev)
	}
}

func TestZeroRadiusCircle(t *testing.T) {
	c := Circle{C: Pt(5, 5), R: 0}
	if got := c.IntersectPolyArea(R(0, 0, 10, 10).Poly()); got != 0 {
		t.Errorf("zero radius overlap = %v", got)
	}
}
