package geo

import (
	"math"
	"sort"
)

// ConvexHull returns the convex hull of the given points in counter-
// clockwise order (Andrew's monotone chain). Collinear boundary points are
// dropped. The service uses it to turn arbitrary client-supplied corner
// sets into the convex query areas the exact overlap arithmetic supports.
func ConvexHull(points []Point) Polygon {
	if len(points) < 3 {
		out := make(Polygon, len(points))
		copy(out, points)
		return out
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Deduplicate.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) < 3 {
		out := make(Polygon, len(ps))
		copy(out, ps)
		return out
	}

	cross := func(o, a, b Point) float64 { return a.Sub(o).Cross(b.Sub(o)) }
	var lower, upper []Point
	for _, p := range ps {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(ps) - 1; i >= 0; i-- {
		p := ps[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return Polygon(hull)
}

// IsConvex reports whether the polygon is convex (in either orientation).
// Degenerate polygons with fewer than 3 vertices are not convex.
func (pg Polygon) IsConvex() bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	sign := 0.0
	for i := 0; i < n; i++ {
		a, b, c := pg[i], pg[(i+1)%n], pg[(i+2)%n]
		cr := b.Sub(a).Cross(c.Sub(b))
		if math.Abs(cr) < 1e-12 {
			continue // collinear run
		}
		if sign == 0 {
			sign = cr
		} else if (cr > 0) != (sign > 0) {
			return false
		}
	}
	return sign != 0
}
