// Benchmarks regenerating the paper's evaluation (Section 7).
//
// Table 1 (throughput of the data-storage component; 10 km × 10 km service
// area, 25 000 tracked objects):
//
//	BenchmarkTable1IndexCreation      — "creating index"
//	BenchmarkTable1PositionUpdate     — "position updates"
//	BenchmarkTable1PositionQuery      — "position query"
//	BenchmarkTable1RangeQuery/10m     — "range query (10 m × 10 m)"
//	BenchmarkTable1RangeQuery/100m    — "range query (100 m × 100 m)"
//	BenchmarkTable1RangeQuery/1km     — "range query (1 km × 1 km)"
//
// Table 2 (response time and throughput on the distributed configuration;
// 1.5 km × 1.5 km, one root plus four leaf servers, 10 000 objects):
//
//	BenchmarkTable2Update             — "position updates (with ACK)"
//	BenchmarkTable2PosQueryLocal      — "local position query"
//	BenchmarkTable2PosQueryRemote     — "remote position query"
//	BenchmarkTable2RangeQueryLocal    — "local range query"
//	BenchmarkTable2RangeQueryRemote/1 — "remote range query (1 server)"
//	BenchmarkTable2RangeQueryRemote/2 — "remote range query (2 servers)"
//	BenchmarkTable2RangeQueryRemote/4 — "remote range query (4 servers)"
//
// Ablations (DESIGN.md experiments index): BenchmarkIndexAblation (A1) and
// BenchmarkCacheAblation (A2). Absolute numbers differ from the paper's
// 2001 hardware; the shape — updates cheaper than range queries, position
// queries cheapest, local ≪ remote, larger areas slower — is what the
// reproduction checks (see EXPERIMENTS.md).
package locsvc_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locsvc"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/spatial"
	"locsvc/internal/store"
	"locsvc/internal/wire"
)

// ---------------------------------------------------------------------------
// Table 1: data-storage component on a single node.

const (
	table1Objects  = 25_000
	table1AreaSide = 10_000.0 // 10 km
)

// newTable1DB loads a sighting database with the paper's Table 1 population.
func newTable1DB(kind spatial.Kind) (*store.SightingDB, []core.Sighting) {
	db := store.NewSightingDB(store.WithIndex(kind))
	rng := rand.New(rand.NewSource(1))
	sightings := make([]core.Sighting, table1Objects)
	now := time.Now()
	for i := range sightings {
		sightings[i] = core.Sighting{
			OID:     core.OID(fmt.Sprintf("obj-%d", i)),
			T:       now,
			Pos:     geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide),
			SensAcc: 10,
		}
		db.Put(sightings[i])
	}
	return db, sightings
}

func BenchmarkTable1IndexCreation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sightings := make([]core.Sighting, table1Objects)
	now := time.Now()
	for i := range sightings {
		sightings[i] = core.Sighting{
			OID: core.OID(fmt.Sprintf("obj-%d", i)), T: now,
			Pos:     geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide),
			SensAcc: 10,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := store.NewSightingDB()
		for _, s := range sightings {
			db.Put(s)
		}
	}
	insertsPerSec := float64(b.N) * table1Objects / b.Elapsed().Seconds()
	b.ReportMetric(insertsPerSec, "inserts/s")
}

func BenchmarkTable1PositionUpdate(b *testing.B) {
	db, sightings := newTable1DB(spatial.KindQuadtree)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sightings[rng.Intn(len(sightings))]
		s.Pos = geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide)
		db.Put(s)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

func BenchmarkTable1PositionQuery(b *testing.B) {
	db, sightings := newTable1DB(spatial.KindQuadtree)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Get(sightings[rng.Intn(len(sightings))].OID); !ok {
			b.Fatal("object vanished")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// storageRangeQuery runs the leaf-storage part of a range query: spatial
// index search over the enlarged bounds plus the exact overlap filter —
// the work the paper's Table 1 measures.
func storageRangeQuery(db *store.SightingDB, area core.Area, reqAcc, reqOverlap float64) int {
	enlarged := area.Bounds().Enlarge(reqAcc)
	n := 0
	db.SearchArea(enlarged, func(s core.Sighting) bool {
		ld := core.LocationDescriptor{Pos: s.Pos, Acc: s.SensAcc}
		if area.RangeQualifies(ld, reqAcc, reqOverlap) {
			n++
		}
		return true
	})
	return n
}

func BenchmarkTable1RangeQuery(b *testing.B) {
	db, _ := newTable1DB(spatial.KindQuadtree)
	for _, bc := range []struct {
		name string
		side float64
	}{
		{"10m", 10},
		{"100m", 100},
		{"1km", 1000},
	} {
		b.Run(bc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			b.ResetTimer()
			found := 0
			for i := 0; i < b.N; i++ {
				x := rng.Float64() * (table1AreaSide - bc.side)
				y := rng.Float64() * (table1AreaSide - bc.side)
				area := core.AreaFromRect(geo.R(x, y, x+bc.side, y+bc.side))
				found += storageRangeQuery(db, area, 25, 0.5)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
			b.ReportMetric(float64(found)/float64(b.N), "objs/query")
		})
	}
}

// ---------------------------------------------------------------------------
// Table 2: the distributed configuration. The five SUN workstations on
// 100 Mbit Ethernet become goroutine servers with a synthetic per-hop
// latency, preserving hop counts and the local/remote shape.

const table2HopLatency = 200 * time.Microsecond

type table2World struct {
	svc     *locsvc.Service
	objects []*locsvc.TrackedObject
	objPos  []locsvc.Point
	// clients[i] is pinned to leaf i (r.0 … r.3).
	clients []*locsvc.Client
}

var (
	table2Once sync.Once
	table2     *table2World
	table2Err  error
)

// getTable2World builds the 10 000-object deployment once per benchmark
// process.
func getTable2World(b *testing.B) *table2World {
	b.Helper()
	table2Once.Do(func() {
		svc, err := locsvc.NewLocal(locsvc.LocalConfig{
			Area:       locsvc.R(0, 0, 1500, 1500),
			Levels:     []locsvc.Level{{Rows: 2, Cols: 2}},
			HopLatency: table2HopLatency,
		})
		if err != nil {
			table2Err = err
			return
		}
		w := &table2World{svc: svc}
		ctx := context.Background()
		// One registering client per quadrant keeps registration local.
		regClients := map[locsvc.NodeID]*locsvc.Client{}
		for i, corner := range []locsvc.Point{
			locsvc.Pt(10, 10), locsvc.Pt(1490, 10), locsvc.Pt(10, 1490), locsvc.Pt(1490, 1490),
		} {
			c, cerr := svc.NewClientAt(fmt.Sprintf("bench-client-%d", i), corner)
			if cerr != nil {
				table2Err = cerr
				return
			}
			entry, _ := svc.EntryFor(corner)
			regClients[entry] = c
			w.clients = append(w.clients, c)
		}
		rng := rand.New(rand.NewSource(5))
		now := time.Now()
		for i := 0; i < 10_000; i++ {
			p := locsvc.Pt(rng.Float64()*1499, rng.Float64()*1499)
			entry, _ := svc.EntryFor(p)
			obj, rerr := regClients[entry].Register(ctx, locsvc.Sighting{
				OID: locsvc.OID(fmt.Sprintf("t2-%d", i)), T: now, Pos: p, SensAcc: 5,
			}, 25, 100, 3)
			if rerr != nil {
				table2Err = rerr
				return
			}
			w.objects = append(w.objects, obj)
			w.objPos = append(w.objPos, p)
		}
		// Let createPath propagation quiesce.
		time.Sleep(500 * time.Millisecond)
		table2 = w
	})
	if table2Err != nil {
		b.Fatalf("building table 2 world: %v", table2Err)
	}
	return table2
}

// leafOf returns the quadrant index (0-3) of a position.
func leafOf(p locsvc.Point) int {
	q := 0
	if p.X >= 750 {
		q++
	}
	if p.Y >= 750 {
		q += 2
	}
	return q
}

func BenchmarkTable2Update(b *testing.B) {
	w := getTable2World(b)
	rng := rand.New(rand.NewSource(6))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := rng.Intn(len(w.objects))
		obj := w.objects[idx]
		base := w.objPos[idx]
		p := locsvc.Pt(clampF(base.X+rng.Float64()*10-5, 0, 1499), clampF(base.Y+rng.Float64()*10-5, 0, 1499))
		// Keep the object in its quadrant so updates stay local, as in
		// the paper's Table 2 setup.
		if leafOf(p) != leafOf(base) {
			p = base
		}
		s := locsvc.Sighting{OID: obj.OID(), T: time.Now(), Pos: p, SensAcc: 5}
		if err := obj.Update(ctx, s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "ms/op")
}

func BenchmarkTable2PosQueryLocal(b *testing.B) {
	w := getTable2World(b)
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	// Objects in quadrant 0, queried via the client pinned to r.0.
	var local []int
	for i, p := range w.objPos {
		if leafOf(p) == 0 {
			local = append(local, i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := local[rng.Intn(len(local))]
		if _, err := w.clients[0].PosQuery(ctx, w.objects[idx].OID()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2PosQueryRemote(b *testing.B) {
	w := getTable2World(b)
	rng := rand.New(rand.NewSource(8))
	ctx := context.Background()
	// Objects in quadrant 3, queried via the client pinned to r.0.
	var remote []int
	for i, p := range w.objPos {
		if leafOf(p) == 3 {
			remote = append(remote, i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := remote[rng.Intn(len(remote))]
		if _, err := w.clients[0].PosQuery(ctx, w.objects[idx].OID()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2RangeQueryLocal(b *testing.B) {
	w := getTable2World(b)
	rng := rand.New(rand.NewSource(9))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 50 m × 50 m inside quadrant 0 (the paper's medium size).
		x := rng.Float64() * 650
		y := rng.Float64() * 650
		if _, err := w.clients[0].RangeQueryRect(ctx, locsvc.R(x, y, x+50, y+50), 100, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2RangeQueryRemote(b *testing.B) {
	w := getTable2World(b)
	ctx := context.Background()
	cases := []struct {
		name string
		area locsvc.Rect
	}{
		// Entirely inside r.3 (one remote server).
		{"1server", locsvc.R(1000, 1000, 1050, 1050)},
		// Straddling r.1 and r.3 (two remote servers).
		{"2servers", locsvc.R(1000, 725, 1050, 775)},
		// Centered on the root midpoint (all four servers).
		{"4servers", locsvc.R(725, 725, 775, 775)},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.clients[0].RangeQueryRect(ctx, bc.area, 100, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation A1: spatial index choice for the sightingDB.

func BenchmarkIndexAblation(b *testing.B) {
	for _, kind := range []spatial.Kind{spatial.KindQuadtree, spatial.KindRTree, spatial.KindLinear} {
		b.Run(kind.String()+"/update", func(b *testing.B) {
			db, sightings := newTable1DB(kind)
			rng := rand.New(rand.NewSource(10))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := sightings[rng.Intn(len(sightings))]
				s.Pos = geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide)
				db.Put(s)
			}
		})
		b.Run(kind.String()+"/range100m", func(b *testing.B) {
			db, _ := newTable1DB(kind)
			rng := rand.New(rand.NewSource(11))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x := rng.Float64() * (table1AreaSide - 100)
				y := rng.Float64() * (table1AreaSide - 100)
				storageRangeQuery(db, core.AreaFromRect(geo.R(x, y, x+100, y+100)), 25, 0.5)
			}
		})
		b.Run(kind.String()+"/nearest", func(b *testing.B) {
			db, _ := newTable1DB(kind)
			rng := rand.New(rand.NewSource(12))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide)
				n := 0
				db.NearestFunc(p, func(core.Sighting, float64) bool {
					n++
					return n < 5
				})
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation A2: Section 6.5 caching for remote position queries.

func BenchmarkCacheAblation(b *testing.B) {
	for _, withCache := range []bool{false, true} {
		name := "nocache"
		if withCache {
			name = "cache"
		}
		b.Run(name, func(b *testing.B) {
			svc, err := locsvc.NewLocal(locsvc.LocalConfig{
				Area:         locsvc.R(0, 0, 1500, 1500),
				Levels:       []locsvc.Level{{Rows: 2, Cols: 2}},
				HopLatency:   table2HopLatency,
				EnableCaches: withCache,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			ctx := context.Background()
			owner, err := svc.NewClientAt("owner", locsvc.Pt(10, 10))
			if err != nil {
				b.Fatal(err)
			}
			defer owner.Close()
			const n = 64
			for i := 0; i < n; i++ {
				if _, err := owner.Register(ctx, locsvc.Sighting{
					OID: locsvc.OID(fmt.Sprintf("a-%d", i)), T: time.Now(),
					Pos: locsvc.Pt(10+float64(i), 10), SensAcc: 5,
				}, 25, 100, 3); err != nil {
					b.Fatal(err)
				}
			}
			time.Sleep(100 * time.Millisecond) // createPath quiesce
			remote, err := svc.NewClientAt("remote", locsvc.Pt(1490, 1490))
			if err != nil {
				b.Fatal(err)
			}
			defer remote.Close()
			rng := rand.New(rand.NewSource(13))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				oid := locsvc.OID(fmt.Sprintf("a-%d", rng.Intn(n)))
				if _, err := remote.PosQuery(ctx, oid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Sharded store: parallel throughput of the concurrent sighting store at
// 1/4/8 shards, against the seed-equivalent single-lock baseline. Updates go
// through the batched UpdatePipeline (group commit per shard); queries fan
// out across shards and merge. A recorded run lives in
// BENCH_sharded_store.json.

var shardBenchSeed atomic.Int64

// benchRng hands every RunParallel goroutine its own seeded source.
func benchRng() *rand.Rand {
	return rand.New(rand.NewSource(shardBenchSeed.Add(1)))
}

// shardedBenchStores enumerates the stores under comparison: the seed
// single-lock SightingDB and the sharded store at increasing shard counts.
func shardedBenchStores() []struct {
	name string
	mk   func() store.SightingStore
} {
	return []struct {
		name string
		mk   func() store.SightingStore
	}{
		{"baseline-singlelock", func() store.SightingStore { return store.NewSightingDB() }},
		{"shards=1", func() store.SightingStore { return store.NewShardedSightingDB(store.WithShards(1)) }},
		{"shards=4", func() store.SightingStore { return store.NewShardedSightingDB(store.WithShards(4)) }},
		{"shards=8", func() store.SightingStore { return store.NewShardedSightingDB(store.WithShards(8)) }},
	}
}

// loadShardBench fills db with the Table 1 population.
func loadShardBench(db store.SightingStore) []core.Sighting {
	rng := rand.New(rand.NewSource(1))
	sightings := make([]core.Sighting, table1Objects)
	now := time.Now()
	for i := range sightings {
		sightings[i] = core.Sighting{
			OID: core.OID(fmt.Sprintf("obj-%d", i)), T: now,
			Pos:     geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide),
			SensAcc: 10,
		}
		db.Put(sightings[i])
	}
	return sightings
}

func BenchmarkShardedUpdate(b *testing.B) {
	for _, bc := range shardedBenchStores() {
		b.Run(bc.name, func(b *testing.B) {
			db := bc.mk()
			sightings := loadShardBench(db)
			pipe := store.NewUpdatePipeline(db)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := benchRng()
				for pb.Next() {
					s := sightings[rng.Intn(len(sightings))]
					s.Pos = geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide)
					pipe.Put(s)
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
		})
	}
}

func BenchmarkShardedRangeQuery(b *testing.B) {
	for _, bc := range shardedBenchStores() {
		b.Run(bc.name, func(b *testing.B) {
			db := bc.mk()
			loadShardBench(db)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := benchRng()
				for pb.Next() {
					x := rng.Float64() * (table1AreaSide - 100)
					y := rng.Float64() * (table1AreaSide - 100)
					area := core.AreaFromRect(geo.R(x, y, x+100, y+100))
					enlarged := area.Bounds().Enlarge(25)
					db.SearchArea(enlarged, func(s core.Sighting) bool {
						ld := core.LocationDescriptor{Pos: s.Pos, Acc: s.SensAcc}
						area.RangeQualifies(ld, 25, 0.5)
						return true
					})
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

func BenchmarkShardedNearest(b *testing.B) {
	for _, bc := range shardedBenchStores() {
		b.Run(bc.name, func(b *testing.B) {
			db := bc.mk()
			loadShardBench(db)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := benchRng()
				for pb.Next() {
					p := geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide)
					n := 0
					db.NearestFunc(p, func(core.Sighting, float64) bool {
						n++
						return n < 5
					})
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkShardedMixed is the paper-shaped workload: 90% updates, 10%
// range queries, all goroutines hammering one store.
func BenchmarkShardedMixed(b *testing.B) {
	for _, bc := range shardedBenchStores() {
		b.Run(bc.name, func(b *testing.B) {
			db := bc.mk()
			sightings := loadShardBench(db)
			pipe := store.NewUpdatePipeline(db)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := benchRng()
				for pb.Next() {
					if rng.Intn(10) == 0 {
						x := rng.Float64() * (table1AreaSide - 100)
						y := rng.Float64() * (table1AreaSide - 100)
						db.SearchArea(geo.R(x, y, x+100, y+100), func(core.Sighting) bool { return true })
					} else {
						s := sightings[rng.Intn(len(sightings))]
						s.Pos = geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide)
						pipe.Put(s)
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// ---------------------------------------------------------------------------
// Sighting WAL: update-path overhead of durable per-shard logs, and the
// parallel-replay speedup of sharded recovery. A recorded run lives in
// BENCH_wal.json.

// BenchmarkWALUpdate measures the cost the per-shard sighting WAL adds to
// the batched update path at shards=8: no WAL, WAL with per-append flush
// (process-crash durability, the default) and WAL with fsync-per-append.
func BenchmarkWALUpdate(b *testing.B) {
	cases := []struct {
		name string
		wal  bool
		sync bool
	}{
		{"shards=8/nowal", false, false},
		{"shards=8/wal", true, false},
		{"shards=8/wal+sync", true, true},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			opts := []store.SightingDBOption{store.WithShards(8)}
			var w *store.ShardedWAL
			if bc.wal {
				var walOpts []store.FileWALOption
				if bc.sync {
					walOpts = append(walOpts, store.WithSync())
				}
				var err error
				w, err = store.OpenShardedWAL(b.TempDir(), 8, walOpts...)
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				opts = append(opts, store.WithSightingWAL(w))
			}
			db := store.NewShardedSightingDB(opts...)
			sightings := loadShardBench(db)
			pipe := store.NewUpdatePipeline(db)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := benchRng()
				for pb.Next() {
					s := sightings[rng.Intn(len(sightings))]
					s.Pos = geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide)
					pipe.Put(s)
				}
			})
			b.StopTimer()
			if w != nil {
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
		})
	}
}

// BenchmarkWALReplay measures crash recovery: replaying the same 25k-object
// history from one serial log versus eight per-shard logs recovered in
// parallel (each bulk-loading its spatial index). Each iteration recovers
// a fresh copy of the golden log — Recover auto-compacts a churn-heavy
// log, so reusing one directory would measure snapshot replay after the
// first iteration.
func BenchmarkWALReplay(b *testing.B) {
	copyDir := func(src, dst string) {
		b.Helper()
		entries, err := os.ReadDir(src)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(src, e.Name()))
			if err != nil {
				b.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			dir := b.TempDir()
			w, err := store.OpenShardedWAL(dir, shards)
			if err != nil {
				b.Fatal(err)
			}
			db := store.NewShardedSightingDB(store.WithSightingWAL(w))
			loadShardBench(db)
			// A second round of updates so replay does real supersede work.
			rng := rand.New(rand.NewSource(21))
			batch := make([]core.Sighting, 0, 256)
			for i := 0; i < table1Objects; i++ {
				batch = append(batch, core.Sighting{
					OID: core.OID(fmt.Sprintf("obj-%d", rng.Intn(table1Objects))),
					Pos: geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide),
				})
				if len(batch) == cap(batch) {
					db.PutBatch(batch)
					batch = batch[:0]
				}
			}
			db.PutBatch(batch)
			if err := db.WALErr(); err != nil {
				b.Fatal(err)
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh := b.TempDir()
				copyDir(dir, fresh)
				b.StartTimer()
				w2, err := store.OpenShardedWAL(fresh, shards)
				if err != nil {
					b.Fatal(err)
				}
				db2 := store.NewShardedSightingDB(store.WithSightingWAL(w2))
				if err := db2.Recover(); err != nil {
					b.Fatal(err)
				}
				if db2.Len() != table1Objects {
					b.Fatalf("recovered %d records", db2.Len())
				}
				if err := w2.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(table1Objects)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ---------------------------------------------------------------------------
// Supporting micro-benchmarks: wire codec and nearest-neighbor query.

func BenchmarkWireCodec(b *testing.B) {
	env := msg.Envelope{From: "r.0", CorrID: 42, Msg: msg.RangeQuerySubRes{
		OpID: 7,
		Objs: []core.Entry{
			{OID: "a", LD: core.LocationDescriptor{Pos: geo.Pt(1, 2), Acc: 10}},
			{OID: "b", LD: core.LocationDescriptor{Pos: geo.Pt(3, 4), Acc: 10}},
			{OID: "c", LD: core.LocationDescriptor{Pos: geo.Pt(5, 6), Acc: 10}},
		},
		CoveredSize: 2500,
	}}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wire.Encode(env); err != nil {
				b.Fatal(err)
			}
		}
	})
	data, err := wire.Encode(env)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wire.Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(len(data)), "bytes/msg")
}

func BenchmarkNeighborQuery(b *testing.B) {
	w := getTable2World(b)
	rng := rand.New(rand.NewSource(14))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := locsvc.Pt(rng.Float64()*1400, rng.Float64()*1400)
		if _, err := w.clients[0].NeighborQuery(ctx, p, 100, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNearestCursor measures the per-query cost of the resumable
// nearest-neighbor cursor on a single index: 5 neighbors off a 25k-entry
// population. Run with -benchmem — the typed traversal heap plus pooled
// cursors keep the steady state at a handful of allocations per query,
// where the container/heap implementation boxed every push.
func BenchmarkNearestCursor(b *testing.B) {
	for _, kind := range []spatial.Kind{spatial.KindQuadtree, spatial.KindRTree} {
		b.Run(kind.String(), func(b *testing.B) {
			ix := spatial.New(kind)
			rng := rand.New(rand.NewSource(16))
			for i := 0; i < table1Objects; i++ {
				ix.Insert(core.OID(fmt.Sprintf("o%d", i)),
					geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide)
				c := ix.NearestCursor(p)
				for k := 0; k < 5; k++ {
					if _, ok := c.Next(); !ok {
						break
					}
				}
				c.Close()
			}
		})
	}
}

// BenchmarkIndexBulkLoad compares the balanced bulk construction used for
// crash recovery against one-by-one insertion (the Table 1 "creating
// index" path).
func BenchmarkIndexBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	items := make([]spatial.Item, table1Objects)
	for i := range items {
		items[i] = spatial.Item{
			ID:  core.OID(fmt.Sprintf("o%d", i)),
			Pos: geo.Pt(rng.Float64()*table1AreaSide, rng.Float64()*table1AreaSide),
		}
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qt := spatial.NewQuadtree()
			for _, it := range items {
				qt.Insert(it.ID, it.Pos)
			}
		}
	})
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spatial.BulkLoad(items)
		}
	})
}
