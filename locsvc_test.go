package locsvc_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"locsvc"
)

func TestFacadeEndToEnd(t *testing.T) {
	svc, err := locsvc.NewLocal(locsvc.LocalConfig{
		Area:   locsvc.R(0, 0, 1500, 1500),
		Levels: []locsvc.Level{{Rows: 2, Cols: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if got := len(svc.Leaves()); got != 4 {
		t.Fatalf("leaves = %d", got)
	}
	entry, ok := svc.EntryFor(locsvc.Pt(100, 100))
	if !ok || entry != "r.0" {
		t.Fatalf("EntryFor = %v/%v", entry, ok)
	}

	ctx := context.Background()
	c, err := svc.NewClientAt("phone", locsvc.Pt(100, 100))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := c.Register(ctx, locsvc.Sighting{
		OID: "taxi-1", T: time.Now(), Pos: locsvc.Pt(120, 120), SensAcc: 5,
	}, 10, 50, 14)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Update(ctx, locsvc.Sighting{
		OID: "taxi-1", T: time.Now(), Pos: locsvc.Pt(150, 150), SensAcc: 5,
	}); err != nil {
		t.Fatal(err)
	}
	ld, err := c.PosQuery(ctx, "taxi-1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != locsvc.Pt(150, 150) {
		t.Errorf("ld = %+v", ld)
	}
	objs, err := c.RangeQuery(ctx, locsvc.AreaFromRect(locsvc.R(100, 100, 200, 200)), 25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].OID != "taxi-1" {
		t.Errorf("range = %+v", objs)
	}
	res, err := c.NeighborQuery(ctx, locsvc.Pt(0, 0), 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nearest.OID != "taxi-1" {
		t.Errorf("nearest = %+v", res.Nearest)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := locsvc.NewLocal(locsvc.LocalConfig{}); !errors.Is(err, locsvc.ErrBadRequest) {
		t.Errorf("empty area err = %v", err)
	}
	svc, err := locsvc.NewLocal(locsvc.LocalConfig{Area: locsvc.R(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.NewClientAt("x", locsvc.Pt(500, 500)); !errors.Is(err, locsvc.ErrOutOfArea) {
		t.Errorf("out-of-area client err = %v", err)
	}
}

func TestFacadeCachesAndIndexChoices(t *testing.T) {
	for _, kind := range []locsvc.IndexKind{locsvc.IndexQuadtree, locsvc.IndexRTree, locsvc.IndexLinear} {
		svc, err := locsvc.NewLocal(locsvc.LocalConfig{
			Area:         locsvc.R(0, 0, 1000, 1000),
			Levels:       []locsvc.Level{{Rows: 2, Cols: 2}},
			Index:        kind,
			EnableCaches: true,
		})
		if err != nil {
			t.Fatalf("index %v: %v", kind, err)
		}
		ctx := context.Background()
		c, err := svc.NewClientAt("c", locsvc.Pt(10, 10))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Register(ctx, locsvc.Sighting{OID: "o", T: time.Now(), Pos: locsvc.Pt(10, 10), SensAcc: 5}, 10, 50, 3); err != nil {
			t.Fatalf("index %v: %v", kind, err)
		}
		if _, err := c.PosQuery(ctx, "o"); err != nil {
			t.Fatalf("index %v: %v", kind, err)
		}
		c.Close()
		svc.Close()
	}
}
