package locsvc_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"locsvc"
)

func TestFacadeEndToEnd(t *testing.T) {
	svc, err := locsvc.NewLocal(locsvc.LocalConfig{
		Area:   locsvc.R(0, 0, 1500, 1500),
		Levels: []locsvc.Level{{Rows: 2, Cols: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if got := len(svc.Leaves()); got != 4 {
		t.Fatalf("leaves = %d", got)
	}
	entry, ok := svc.EntryFor(locsvc.Pt(100, 100))
	if !ok || entry != "r.0" {
		t.Fatalf("EntryFor = %v/%v", entry, ok)
	}

	ctx := context.Background()
	c, err := svc.NewClientAt("phone", locsvc.Pt(100, 100))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := c.Register(ctx, locsvc.Sighting{
		OID: "taxi-1", T: time.Now(), Pos: locsvc.Pt(120, 120), SensAcc: 5,
	}, 10, 50, 14)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Update(ctx, locsvc.Sighting{
		OID: "taxi-1", T: time.Now(), Pos: locsvc.Pt(150, 150), SensAcc: 5,
	}); err != nil {
		t.Fatal(err)
	}
	ld, err := c.PosQuery(ctx, "taxi-1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != locsvc.Pt(150, 150) {
		t.Errorf("ld = %+v", ld)
	}
	objs, err := c.RangeQuery(ctx, locsvc.AreaFromRect(locsvc.R(100, 100, 200, 200)), 25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].OID != "taxi-1" {
		t.Errorf("range = %+v", objs)
	}
	res, err := c.NeighborQuery(ctx, locsvc.Pt(0, 0), 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nearest.OID != "taxi-1" {
		t.Errorf("nearest = %+v", res.Nearest)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := locsvc.NewLocal(locsvc.LocalConfig{}); !errors.Is(err, locsvc.ErrBadRequest) {
		t.Errorf("empty area err = %v", err)
	}
	svc, err := locsvc.NewLocal(locsvc.LocalConfig{Area: locsvc.R(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.NewClientAt("x", locsvc.Pt(500, 500)); !errors.Is(err, locsvc.ErrOutOfArea) {
		t.Errorf("out-of-area client err = %v", err)
	}
}

func TestFacadeReplicas(t *testing.T) {
	levels := []locsvc.Level{{Rows: 2, Cols: 2}}
	area := locsvc.R(0, 0, 1000, 1000)
	for name, bad := range map[string]locsvc.LocalConfig{
		"no WALDir":      {Area: area, Levels: levels, Replicas: true},
		"no levels":      {Area: area, WALDir: os.TempDir(), Replicas: true},
		"with AutoShard": {Area: area, Levels: levels, WALDir: os.TempDir(), Replicas: true, AutoShard: &locsvc.AutoShardConfig{}},
	} {
		if _, err := locsvc.NewLocal(bad); !errors.Is(err, locsvc.ErrBadRequest) {
			t.Errorf("Replicas %s: err = %v, want ErrBadRequest", name, err)
		}
	}

	dir := t.TempDir()
	svc, err := locsvc.NewLocal(locsvc.LocalConfig{
		Area:            area,
		Levels:          levels,
		WALDir:          dir,
		Replicas:        true,
		JanitorInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx := context.Background()
	c, err := svc.NewClientAt("phone", locsvc.Pt(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	obj, err := c.Register(ctx, locsvc.Sighting{OID: "o", T: time.Now(), Pos: locsvc.Pt(10, 10), SensAcc: 5}, 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Update(ctx, locsvc.Sighting{OID: "o", T: time.Now(), Pos: locsvc.Pt(20, 20), SensAcc: 5}); err != nil {
		t.Fatal(err)
	}
	if ld, err := c.PosQuery(ctx, "o"); err != nil || ld.Pos != locsvc.Pt(20, 20) {
		t.Fatalf("pos = %+v, %v", ld, err)
	}

	// The standby is invisible from the facade until a failover, but its
	// mirror is durable: applied records land in its own sighting WAL
	// under <WALDir>/r.0~s-sightings.
	standbyWAL := filepath.Join(dir, "r.0~s-sightings")
	deadline := time.Now().Add(10 * time.Second)
	for {
		var total int64
		ents, _ := os.ReadDir(standbyWAL)
		for _, e := range ents {
			if info, err := e.Info(); err == nil {
				total += info.Size()
			}
		}
		if total > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby r.0~s never persisted a mirrored record")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFacadeCachesAndIndexChoices(t *testing.T) {
	for _, kind := range []locsvc.IndexKind{locsvc.IndexQuadtree, locsvc.IndexRTree, locsvc.IndexLinear} {
		svc, err := locsvc.NewLocal(locsvc.LocalConfig{
			Area:         locsvc.R(0, 0, 1000, 1000),
			Levels:       []locsvc.Level{{Rows: 2, Cols: 2}},
			Index:        kind,
			EnableCaches: true,
		})
		if err != nil {
			t.Fatalf("index %v: %v", kind, err)
		}
		ctx := context.Background()
		c, err := svc.NewClientAt("c", locsvc.Pt(10, 10))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Register(ctx, locsvc.Sighting{OID: "o", T: time.Now(), Pos: locsvc.Pt(10, 10), SensAcc: 5}, 10, 50, 3); err != nil {
			t.Fatalf("index %v: %v", kind, err)
		}
		if _, err := c.PosQuery(ctx, "o"); err != nil {
			t.Fatalf("index %v: %v", kind, err)
		}
		c.Close()
		svc.Close()
	}
}
