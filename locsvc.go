// Package locsvc is a large-scale location service for mobile objects,
// reproducing Leonhardi & Rothermel, "Architecture of a Large-scale
// Location Service" (TR 2001/01, University of Stuttgart; ICDCS 2002).
//
// The service tracks the geographic positions of mobile objects with
// explicit worst-case accuracy and answers three query types:
//
//   - position queries — the location descriptor of one object,
//   - range queries — all objects inside a polygon, filtered by a required
//     accuracy and a fractional-overlap threshold, and
//   - nearest-neighbor queries — the object closest to a position together
//     with the set of "near" alternatives.
//
// It is implemented by a hierarchy of location servers: leaf servers act as
// agents holding sighting records in a main-memory database (spatial index
// plus object-id hash index); non-leaf servers hold forwarding references
// that form a root-to-agent path per object. Handovers move tracking
// responsibility as objects cross service-area boundaries; three optional
// leaf caches shortcut the tree for hot paths.
//
// # Quick start
//
//	svc, err := locsvc.NewLocal(locsvc.LocalConfig{
//		Area:   locsvc.R(0, 0, 1500, 1500), // meters
//		Levels: []locsvc.Level{{Rows: 2, Cols: 2}},
//	})
//	if err != nil { ... }
//	defer svc.Close()
//
//	c, err := svc.NewClientAt("phone-1", locsvc.Pt(100, 100))
//	obj, err := c.Register(ctx, locsvc.Sighting{
//		OID: "taxi-7", T: time.Now(), Pos: locsvc.Pt(100, 100), SensAcc: 5,
//	}, 10, 50, 14)
//	_ = obj.Update(ctx, ...)
//	ld, err := c.PosQuery(ctx, "taxi-7")
//
// See the examples/ directory for complete scenarios and DESIGN.md for the
// mapping between this code base and the paper.
package locsvc

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/spatial"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

// Core model types, re-exported for the public API.
type (
	// OID identifies a tracked object.
	OID = core.OID
	// Sighting is one position report.
	Sighting = core.Sighting
	// LocationDescriptor is a position plus worst-case accuracy.
	LocationDescriptor = core.LocationDescriptor
	// Entry is one (object, descriptor) query-result pair.
	Entry = core.Entry
	// Area is a convex query or service area.
	Area = core.Area
	// Point is a position in the local metric plane.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// LatLon is a WGS84 geographic coordinate.
	LatLon = geo.LatLon
	// Projection converts LatLon to the local plane.
	Projection = geo.Projection
	// Client issues service operations through an entry server.
	Client = client.Client
	// TrackedObject is the handle of one registered object.
	TrackedObject = client.TrackedObject
	// NeighborResult is a nearest-neighbor answer.
	NeighborResult = client.NeighborResult
	// ClientOptions configure a Client.
	ClientOptions = client.Options
	// Level describes one hierarchy level's grid fan-out.
	Level = hierarchy.Level
	// NodeID names a node on the service network.
	NodeID = msg.NodeID
)

// Re-exported service model errors.
var (
	ErrNotFound   = core.ErrNotFound
	ErrAccuracy   = core.ErrAccuracy
	ErrOutOfArea  = core.ErrOutOfArea
	ErrBadRequest = core.ErrBadRequest
)

// Pt builds a Point.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// R builds a Rect from two corners.
func R(x0, y0, x1, y1 float64) Rect { return geo.R(x0, y0, x1, y1) }

// AreaFromRect converts a Rect into an Area.
func AreaFromRect(r Rect) Area { return core.AreaFromRect(r) }

// AreaFromPoints builds the convex query area spanned by corner points.
func AreaFromPoints(points ...Point) Area { return core.AreaFromPoints(points) }

// IndexKind selects a spatial index implementation.
type IndexKind = spatial.Kind

// AutoShardConfig bounds and tunes adaptive shard resizing
// (LocalConfig.AutoShard); see store.AutoShardConfig for the decision
// rule and field defaults.
type AutoShardConfig = store.AutoShardConfig

// TierConfig enables and tunes tiered (LSM) sighting storage
// (LocalConfig.Tiering); see store.TierConfig for the knobs and their
// defaults.
type TierConfig = store.TierConfig

// Spatial index kinds for LocalConfig.Index.
const (
	IndexQuadtree = spatial.KindQuadtree
	IndexRTree    = spatial.KindRTree
	IndexLinear   = spatial.KindLinear
)

// LocalConfig configures an in-process deployment of the service.
type LocalConfig struct {
	// Area is the root service area in meters.
	Area Rect
	// Levels describes the hierarchy below the root; empty means a
	// single server.
	Levels []Level
	// RootPartitions > 1 partitions the root level by object-id hash
	// (Section 4's HLR-style partitioning); requires at least one level.
	RootPartitions int
	// AchievableAcc is the best accuracy the leaves' sensor
	// infrastructure sustains (default 10 m).
	AchievableAcc float64
	// SightingTTL enables soft-state expiry of silent objects.
	SightingTTL time.Duration
	// JanitorInterval overrides the leaves' janitor cadence — the tick
	// that collects expired visitors, observes contention for AutoShard
	// and compacts grown WAL segments. Zero picks a default from the
	// enabled features (SightingTTL/4; else 5s with AutoShard; else 1m
	// with a sighting WAL).
	JanitorInterval time.Duration
	// Index selects the sightingDB spatial index (default quadtree).
	Index IndexKind
	// Shards partitions each leaf's sighting store into that many
	// independently locked shards keyed by object id, so concurrent
	// updates scale across cores; 0 or 1 keeps the single-lock store,
	// negative counts are rejected. With AutoShard this is only the
	// starting count.
	Shards int
	// AutoShard enables contention-driven live resizing of each leaf's
	// sighting store: the shard count grows and shrinks between the
	// configured bounds from observed lock contention, with queries and
	// updates served throughout the migration. Zero fields take the
	// documented defaults.
	AutoShard *AutoShardConfig
	// Tiering turns each leaf's sighting store into a two-tier LSM:
	// the in-memory shards hold only the recent tail (the memtable
	// budget) and older versions live in immutable sorted runs under
	// the leaf's WAL directory, so a leaf can track far more objects
	// than fit in RAM and recovery replays only the short WAL tail.
	// Requires WALDir (unless TierConfig.Dir is set per deployment);
	// mutually exclusive with AutoShard. Zero fields take the
	// documented defaults.
	Tiering *TierConfig
	// WALDir enables durable server state. Every server persists its
	// visitorDB (the forwarding paths of paper Section 5) to
	// <dir>/<id>-visitors.wal, and every leaf additionally keeps one
	// durable log segment per sighting shard under <dir>/<id>-sightings/,
	// replayed in parallel on deployment. Restarting a Service on the
	// same WALDir therefore restores tracked objects, their forwarding
	// paths and their last positions — queries answer immediately,
	// before any device re-reports. Empty keeps all state in memory.
	WALDir string
	// WALSync fsyncs every WAL append (machine-crash durability instead
	// of process-crash durability).
	WALSync bool
	// Replicas gives every leaf a hot standby: a second server named
	// "<leaf>~s" that mirrors the leaf's sightings and visitors via
	// WAL-tail streaming and fetches its immutable run files (run
	// shipping). The leaves' parent health-checks each primary and, after
	// repeated probe failures, promotes the standby under a higher fencing
	// epoch and rebinds its forwarding records; clients follow the
	// redirect transparently. Requires WALDir (the WAL tail is the
	// replication stream) and at least one hierarchy level (the root has
	// no parent to fail it over); mutually exclusive with AutoShard. See
	// the internal/server package documentation for the failover
	// semantics and the loss window.
	Replicas bool
	// ReplHealthInterval overrides the parents' primary-probe cadence
	// with Replicas (default 500ms). Failover triggers after three
	// consecutive probe failures.
	ReplHealthInterval time.Duration
	// EnableCaches turns on all three leaf caches of Section 6.5.
	EnableCaches bool
	// HopLatency delays every message, modelling network hops.
	HopLatency time.Duration
}

// Service is a running in-process location service.
type Service struct {
	net *transport.Inproc
	dep *hierarchy.Deployment
	// standbys are the hot-standby leaf servers (LocalConfig.Replicas);
	// they live outside the deployment tree because they hold no slot in
	// the hierarchy until a failover promotes them.
	standbys []*server.Server
}

// standbySuffix distinguishes a leaf's hot standby from the leaf itself
// ("r.0" → "r.0~s"); '~' cannot appear in generated hierarchy ids.
const standbySuffix = "~s"

// NewLocal deploys a complete location-server hierarchy in-process. This is
// the primary entry point for simulations, examples and tests; production
// deployments run one server per process via cmd/lsd over UDP.
func NewLocal(cfg LocalConfig) (*Service, error) {
	if cfg.Area.Empty() {
		return nil, fmt.Errorf("%w: empty service area", core.ErrBadRequest)
	}
	opts := transport.InprocOptions{}
	if cfg.HopLatency > 0 {
		opts.Latency = func(_, _ msg.NodeID) time.Duration { return cfg.HopLatency }
	}
	shards, err := store.NormalizeShards(cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadRequest, err)
	}
	if cfg.Tiering != nil {
		if cfg.WALDir == "" && cfg.Tiering.Dir == "" {
			return nil, fmt.Errorf("%w: Tiering requires WALDir (or an explicit TierConfig.Dir)", core.ErrBadRequest)
		}
		if cfg.AutoShard != nil {
			return nil, fmt.Errorf("%w: Tiering and AutoShard are mutually exclusive", core.ErrBadRequest)
		}
	}
	if cfg.Replicas {
		if cfg.WALDir == "" {
			return nil, fmt.Errorf("%w: Replicas requires WALDir (the WAL tail is the replication stream)", core.ErrBadRequest)
		}
		if cfg.AutoShard != nil {
			return nil, fmt.Errorf("%w: Replicas and AutoShard are mutually exclusive (replication streams are per-shard)", core.ErrBadRequest)
		}
		if len(cfg.Levels) == 0 {
			return nil, fmt.Errorf("%w: Replicas requires at least one level (the root has no parent to fail it over)", core.ErrBadRequest)
		}
	}
	net := transport.NewInproc(opts)
	spec := hierarchy.Spec{RootArea: cfg.Area, Levels: cfg.Levels, RootPartitions: cfg.RootPartitions}
	base := server.Options{
		AchievableAcc:    cfg.AchievableAcc,
		SightingTTL:      cfg.SightingTTL,
		JanitorInterval:  cfg.JanitorInterval,
		Index:            cfg.Index,
		Shards:           shards,
		AutoShard:        cfg.AutoShard,
		EnableAreaCache:  cfg.EnableCaches,
		EnableAgentCache: cfg.EnableCaches,
		EnablePosCache:   cfg.EnableCaches,
	}
	// Tiering is per-leaf state: each leaf gets its own TierConfig whose
	// Dir is distinct — by default the run files live next to the leaf's
	// WAL segments (store.TierConfig defaults Dir to the WAL directory);
	// an explicit Dir is subdivided per leaf so deployments never share
	// run files.
	tierFor := func(rec store.ConfigRecord) *store.TierConfig {
		if cfg.Tiering == nil || !rec.IsLeaf() {
			return nil
		}
		tc := *cfg.Tiering
		if tc.Dir != "" {
			tc.Dir = filepath.Join(tc.Dir, rec.ID)
		}
		return &tc
	}
	// replicaMapFor returns the primary→standby map a non-leaf server
	// monitors with Replicas: only the leaves' direct parent probes and
	// promotes. With a partitioned root every partition monitors the same
	// pairs independently — promotion is idempotent under epoch fencing,
	// and each partition must rebind its own child slot anyway.
	replicaMapFor := func(rec store.ConfigRecord) map[string]string {
		if !cfg.Replicas || len(rec.Children) == 0 ||
			strings.Count(rec.Children[0].ID, ".") != len(cfg.Levels) {
			return nil
		}
		m := make(map[string]string, len(rec.Children))
		for _, ch := range rec.Children {
			m[ch.ID] = ch.ID + standbySuffix
		}
		return m
	}
	var walOpts []store.FileWALOption
	if cfg.WALSync {
		walOpts = append(walOpts, store.WithSync())
	}
	var customize func(store.ConfigRecord, server.Options) (server.Options, error)
	if cfg.WALDir != "" {
		customize = func(rec store.ConfigRecord, o server.Options) (server.Options, error) {
			vw, err := store.OpenFileWAL(filepath.Join(cfg.WALDir, rec.ID+"-visitors.wal"), walOpts...)
			if err != nil {
				return o, err
			}
			o.WAL = vw
			if rec.IsLeaf() {
				sw, err := store.OpenShardedWAL(filepath.Join(cfg.WALDir, rec.ID+"-sightings"), shards, walOpts...)
				if err != nil {
					vw.Close()
					return o, err
				}
				o.SightingWAL = sw
				o.Tiering = tierFor(rec)
				if cfg.Replicas {
					o.ReplPeer = rec.ID + standbySuffix
				}
			} else if m := replicaMapFor(rec); m != nil {
				o.Replicas = m
				o.ReplHealthInterval = cfg.ReplHealthInterval
			}
			return o, nil
		}
	} else if cfg.Tiering != nil {
		customize = func(rec store.ConfigRecord, o server.Options) (server.Options, error) {
			o.Tiering = tierFor(rec)
			return o, nil
		}
	}
	dep, err := hierarchy.DeployWith(net, spec, base, customize)
	if err != nil {
		net.Close()
		return nil, err
	}
	svc := &Service{net: net, dep: dep}
	if cfg.Replicas {
		// Standbys start after the primaries: a primary's senders retry
		// into the void until its standby attaches, then bootstrap it
		// with a snapshot. Each standby gets its own WALs and tier
		// directory so a promotion never shares files with the old
		// primary.
		for _, rec := range dep.Configs {
			if !rec.IsLeaf() {
				continue
			}
			sb := rec
			sb.ID = rec.ID + standbySuffix
			o := base
			o.ReplPeer = rec.ID
			o.ReplStandby = true
			vw, err := store.OpenFileWAL(filepath.Join(cfg.WALDir, sb.ID+"-visitors.wal"), walOpts...)
			if err != nil {
				svc.Close()
				return nil, err
			}
			o.WAL = vw
			sw, err := store.OpenShardedWAL(filepath.Join(cfg.WALDir, sb.ID+"-sightings"), shards, walOpts...)
			if err != nil {
				vw.Close()
				svc.Close()
				return nil, err
			}
			o.SightingWAL = sw
			o.Tiering = tierFor(sb)
			s, err := server.New(sb, core.AreaFromRect(cfg.Area), net, o)
			if err != nil {
				svc.Close()
				return nil, err
			}
			svc.standbys = append(svc.standbys, s)
		}
	}
	return svc, nil
}

// NewClientAt attaches a client whose entry server is the leaf responsible
// for position p — the paper's "leaf location server close-by".
func (s *Service) NewClientAt(id string, p Point) (*Client, error) {
	return s.NewClientAtWith(id, p, ClientOptions{})
}

// NewClientAtWith is NewClientAt with explicit client options.
func (s *Service) NewClientAtWith(id string, p Point, opts ClientOptions) (*Client, error) {
	entry, ok := s.dep.LeafFor(p)
	if !ok {
		return nil, fmt.Errorf("%w: %v outside the service area", core.ErrOutOfArea, p)
	}
	return client.New(s.net, msg.NodeID(id), entry, opts)
}

// EntryFor returns the id of the leaf server responsible for p.
func (s *Service) EntryFor(p Point) (NodeID, bool) { return s.dep.LeafFor(p) }

// Leaves returns the ids of all leaf servers.
func (s *Service) Leaves() []NodeID { return s.dep.Leaves() }

// Close shuts down every server (standbys first, so in-flight replication
// applies drain before their primaries go away) and the network.
func (s *Service) Close() error {
	var firstErr error
	for _, sb := range s.standbys {
		if err := sb.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := s.dep.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	s.net.Close()
	return firstErr
}
